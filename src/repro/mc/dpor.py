"""Dynamic partial-order reduction over litmus schedules.

Classic Flanagan–Godefroid DPOR with sleep sets:

* A *race* is a pair of conflicting accesses (same word, at least one
  write-capable — a CAS is conservatively write-capable even when its
  write part would fail dynamically) not ordered by the dependency
  happens-before of the executed prefix. Whenever the step just
  executed races with an earlier step ``e``, a thread that can lead
  the reversal is added to the **backtrack set** of the state before
  ``e``. The thread of the racing step alone is not always enough —
  its access may first require steps of *other* threads it depends
  on — so the choice follows source-DPOR (Abdulla, Aronis, Jonsson,
  Sagonas 2014): among the events after ``e`` that do not
  happen-after ``e`` (plus the racing access itself), the *initials*
  are those with no dependency predecessor inside that window; if
  none of their threads is scheduled at ``pre(e)`` yet, the smallest
  is added.
* **Sleep sets** prune re-exploration: after a thread's subtree at a
  state is done, the thread goes to sleep there; a sleeping thread is
  woken (removed on inheritance) only by the execution of a dependent
  step. The litmus state space is acyclic, so together these visit
  every Mazurkiewicz trace *exactly once* — pinned by the selftest's
  class-set comparison against brute-force enumeration.

The dependency relation the explorer bets on is purely *static* (word
addresses and write-capability are schedule-independent in a litmus
program); :class:`DependencyOrder` reconstructs the same relation from
a recorded trace so representative executions can be canonicalized
(:func:`trace_key`) and compared against brute-force enumeration.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.consistency.events import EventKind, MemoryEvent, Trace
from repro.consistency.happens_before import HappensBefore
from repro.consistency.litmus import LitmusOp, Program, count_interleavings


class DependencyOrder(HappensBefore):
    """The Mazurkiewicz dependency order of one execution.

    The RC happens-before edge set extended with full program order
    and an edge for every pair of conflicting accesses. Two schedules
    are equivalent (same trace) iff they induce the same dependency
    order on the per-thread operation labels — which is exactly what
    :func:`trace_key` hashes.
    """

    def __init__(self, events: Sequence[MemoryEvent], **kwargs) -> None:
        kwargs.setdefault("mode", "rc")
        super().__init__(events, **kwargs)

    def _build_edges(self) -> None:
        super()._build_edges()
        last_of_thread: Dict[int, int] = {}
        accesses: Dict[int, List[Tuple[int, bool]]] = {}
        for event in self._events:
            eid = event.event_id
            preds = self._edges[eid]
            tid = event.thread_id
            if tid in last_of_thread:
                preds.add(last_of_thread[tid])
            last_of_thread[tid] = eid
            # Static write-capability: an RMW counts as a write even
            # when its write part failed (the explorer cannot know the
            # outcome before running the schedule, so the dependency
            # relation must not depend on it either).
            writes = event.kind is not EventKind.READ
            for prior, prior_writes in accesses.get(event.addr, ()):
                if writes or prior_writes:
                    preds.add(prior)
            accesses.setdefault(event.addr, []).append((eid, writes))
            preds.discard(eid)


def trace_key(trace: Trace) -> Tuple:
    """Canonical key of a trace's Mazurkiewicz equivalence class.

    Operations are labeled ``(thread_id, index-in-thread)`` — labels
    are schedule-independent — and the key is the set of (label,
    transitive dependency-predecessor labels) pairs. Two schedules
    yield equal keys iff they are equivalent.
    """
    dep = DependencyOrder(trace.events)
    counters: Dict[int, int] = {}
    labels: List[Tuple[int, int]] = []
    for event in trace.events:
        index = counters.get(event.thread_id, 0)
        counters[event.thread_id] = index + 1
        labels.append((event.thread_id, index))
    entries = []
    for event in trace.events:
        preds = sorted(labels[p] for p in dep.predecessors(event.event_id))
        entries.append((labels[event.event_id], tuple(preds)))
    return tuple(sorted(entries))


@dataclasses.dataclass
class DPORStats:
    """Exploration counters (the BENCH_mc.json payload)."""

    interleavings: int = 0        # total distinct schedules (multinomial)
    schedules_explored: int = 0   # completed representative executions
    states_visited: int = 0       # recursion nodes entered
    sleep_blocked: int = 0        # branches pruned by the sleep set
    backtrack_points: int = 0     # race-driven backtrack additions

    @property
    def reduction(self) -> float:
        """Interleavings covered per schedule actually executed."""
        if not self.schedules_explored:
            return 0.0
        return self.interleavings / self.schedules_explored


class _Frame:
    """Per-depth exploration state (the node before step ``depth``)."""

    __slots__ = ("backtrack", "done", "sleep")

    def __init__(self, backtrack: Set[int], sleep: Set[int]) -> None:
        self.backtrack = backtrack
        self.done: Set[int] = set()
        self.sleep = sleep


class DPORExplorer:
    """Explores one litmus program; yields representative schedules.

    Deterministic: threads are tried in ascending id order, so the
    schedule list (and every downstream verdict/witness) is a pure
    function of the program.
    """

    def __init__(self, program: Program) -> None:
        self._program: List[List[LitmusOp]] = [list(ops) for ops in program]
        self._addrs = [[op.addr for op in ops] for ops in self._program]
        self._writes = [[op.kind != "r" for op in ops]
                        for ops in self._program]
        self.stats = DPORStats(
            interleavings=count_interleavings(self._program))
        # Mutable exploration state (rebuilt by run()).
        self._cursors: List[int] = []
        self._schedule: List[int] = []
        self._closure: List[int] = []       # per step: dep-predecessor bitset
        self._step_addr: List[int] = []
        self._prev_last: List[Optional[int]] = []
        self._last_step: List[Optional[int]] = []
        self._accesses: Dict[int, List[Tuple[int, bool]]] = {}
        self._frames: List[_Frame] = []
        self._results: List[List[int]] = []

    def run(self) -> List[List[int]]:
        """All representative schedules, one per Mazurkiewicz trace."""
        num_threads = len(self._program)
        self._cursors = [0] * num_threads
        self._schedule = []
        self._closure = []
        self._step_addr = []
        self._prev_last = []
        self._last_step = [None] * num_threads
        self._accesses = {}
        self._frames = []
        self._results = []
        self.stats = DPORStats(
            interleavings=count_interleavings(self._program))
        self._explore(frozenset())
        return self._results

    # ------------------------------------------------------------------

    def _explore(self, sleep: FrozenSet[int]) -> None:
        stats = self.stats
        stats.states_visited += 1
        cursors = self._cursors
        program = self._program
        enabled = [t for t in range(len(program))
                   if cursors[t] < len(program[t])]
        if not enabled:
            stats.schedules_explored += 1
            self._results.append(list(self._schedule))
            return
        available = [t for t in enabled if t not in sleep]
        if not available:
            # Every continuation from here is equivalent to one already
            # explored from an ancestor — prune the whole branch.
            stats.sleep_blocked += 1
            return
        frame = _Frame(backtrack={available[0]}, sleep=set(sleep))
        self._frames.append(frame)
        while True:
            todo = [t for t in sorted(frame.backtrack)
                    if t not in frame.done and t not in frame.sleep]
            if not todo:
                break
            thread = todo[0]
            frame.done.add(thread)
            child_sleep = self._step(thread, frame.sleep)
            self._explore(child_sleep)
            self._unstep(thread)
            frame.sleep.add(thread)
        self._frames.pop()

    def _step(self, thread: int, sleep: Set[int]) -> FrozenSet[int]:
        """Execute ``thread``'s next op; register races; return the
        child's sleep set (sleepers independent of this step stay)."""
        index = self._cursors[thread]
        addr = self._addrs[thread][index]
        writes = self._writes[thread][index]
        depth = len(self._schedule)
        closure = self._closure

        last = self._last_step[thread]
        if last is None:
            view = 0
        else:
            # The thread's dependency view: its previous step and
            # everything that step transitively depends on.
            view = closure[last] | (1 << last)
        acc = view
        races = []
        # Latest conflicting access first: an earlier same-word access
        # already ordered below a later one is not an *immediate* race
        # (the reversal is reached through the later one's race).
        for prior, prior_writes in reversed(self._accesses.get(addr, ())):
            if not (writes or prior_writes):
                continue
            if not (acc >> prior) & 1:
                races.append(prior)
            acc |= closure[prior] | (1 << prior)

        for prior in races:
            # Race: this step and step ``prior`` conflict and are
            # unordered — the reversal is a different trace. Schedule
            # one of the reversal's initial threads at the state
            # *before* ``prior``.
            frame = self._frames[prior]
            initials = self._race_initials(prior, depth, thread, acc)
            if frame.backtrack.isdisjoint(initials):
                frame.backtrack.add(min(initials))
                self.stats.backtrack_points += 1

        closure.append(acc)
        self._schedule.append(thread)
        self._step_addr.append(addr)
        self._accesses.setdefault(addr, []).append((depth, writes))
        self._prev_last.append(last)
        self._last_step[thread] = depth
        self._cursors[thread] = index + 1
        return frozenset(
            q for q in sleep if not self._next_op_conflicts(q, addr, writes))

    def _race_initials(self, prior: int, depth: int, thread: int,
                       step_deps: int) -> Set[int]:
        """Threads able to lead the reversal of the race with ``prior``.

        Consider the window of executed steps after ``prior`` that do
        *not* happen-after it, closed by the racing access itself (the
        step ``thread`` is about to take, with dependency-predecessor
        bitset ``step_deps``). The *initials* are the window members
        with no dependency predecessor inside the window — each one's
        thread can be scheduled at ``pre(prior)`` to start an
        execution in which the race runs the other way. Adding only
        ``thread`` is not enough: its access may depend on
        intermediate steps of other threads, and ``thread`` may be
        asleep at ``pre(prior)`` while an initial is not.
        """
        closure = self._closure
        schedule = self._schedule
        window = 0
        initials: Set[int] = set()
        for j in range(prior + 1, depth):
            deps = closure[j]
            if (deps >> prior) & 1:
                continue                 # happens-after prior: excluded
            if not deps & window:
                initials.add(schedule[j])
            window |= 1 << j
        if not step_deps & window:
            initials.add(thread)
        return initials

    def _next_op_conflicts(self, thread: int, addr: int,
                           writes: bool) -> bool:
        index = self._cursors[thread]
        if index >= len(self._program[thread]):
            return False
        return (self._addrs[thread][index] == addr
                and (writes or self._writes[thread][index]))

    def _unstep(self, thread: int) -> None:
        self._schedule.pop()
        self._closure.pop()
        addr = self._step_addr.pop()
        self._accesses[addr].pop()
        self._last_step[thread] = self._prev_last.pop()
        self._cursors[thread] -= 1


def explore_program(program: Program) -> Tuple[List[List[int]], DPORStats]:
    """Convenience wrapper: run DPOR, return (schedules, stats)."""
    explorer = DPORExplorer(program)
    schedules = explorer.run()
    return schedules, explorer.stats
