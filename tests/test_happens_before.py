"""Tests for the RC happens-before construction (paper Section 2.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.events import MemOrder, Trace
from repro.consistency.happens_before import HappensBefore


def hb_of(trace):
    return HappensBefore.from_trace(trace)


class TestReleaseRule:
    def test_write_before_release_ordered(self):
        trace = Trace()
        w = trace.record_write(0, 0x8, 1)
        rel = trace.record_write(0, 0x10, 2, MemOrder.RELEASE)
        assert hb_of(trace).ordered(w.event_id, rel.event_id)

    def test_read_before_release_ordered(self):
        trace = Trace()
        r = trace.record_read(0, 0x8)
        rel = trace.record_write(0, 0x10, 2, MemOrder.RELEASE)
        assert hb_of(trace).ordered(r.event_id, rel.event_id)

    def test_write_after_release_unordered(self):
        trace = Trace()
        rel = trace.record_write(0, 0x10, 2, MemOrder.RELEASE)
        w = trace.record_write(0, 0x8, 1)
        hb = hb_of(trace)
        # One-sided: the release does NOT order later accesses
        # (different address, no acquire).
        assert not hb.ordered(rel.event_id, w.event_id)

    def test_transitive_through_earlier_release(self):
        trace = Trace()
        w = trace.record_write(0, 0x8, 1)
        rel1 = trace.record_write(0, 0x10, 2, MemOrder.RELEASE)
        trace.record_write(0, 0x18, 3)
        rel2 = trace.record_write(0, 0x20, 4, MemOrder.RELEASE)
        hb = hb_of(trace)
        assert hb.ordered(rel1.event_id, rel2.event_id)
        assert hb.ordered(w.event_id, rel2.event_id)


class TestAcquireRule:
    def test_access_after_acquire_ordered(self):
        trace = Trace()
        acq = trace.record_read(0, 0x8, MemOrder.ACQUIRE)
        w = trace.record_write(0, 0x10, 1)
        assert hb_of(trace).ordered(acq.event_id, w.event_id)

    def test_access_before_acquire_unordered(self):
        trace = Trace()
        w = trace.record_write(0, 0x10, 1)
        acq = trace.record_read(0, 0x8, MemOrder.ACQUIRE)
        assert not hb_of(trace).ordered(w.event_id, acq.event_id)

    def test_chained_acquires(self):
        trace = Trace()
        acq1 = trace.record_read(0, 0x8, MemOrder.ACQUIRE)
        acq2 = trace.record_read(0, 0x10, MemOrder.ACQUIRE)
        w = trace.record_write(0, 0x18, 1)
        hb = hb_of(trace)
        assert hb.ordered(acq1.event_id, acq2.event_id)
        assert hb.ordered(acq1.event_id, w.event_id)


class TestSameAddressRule:
    def test_same_address_po_ordered(self):
        trace = Trace()
        w1 = trace.record_write(0, 0x8, 1)
        w2 = trace.record_write(0, 0x8, 2)
        assert hb_of(trace).ordered(w1.event_id, w2.event_id)

    def test_different_address_plain_unordered(self):
        trace = Trace()
        w1 = trace.record_write(0, 0x8, 1)
        w2 = trace.record_write(0, 0x10, 2)
        hb = hb_of(trace)
        assert not hb.ordered(w1.event_id, w2.event_id)
        assert not hb.ordered(w2.event_id, w1.event_id)

    def test_same_address_chain(self):
        trace = Trace()
        w1 = trace.record_write(0, 0x8, 1)
        trace.record_write(0, 0x8, 2)
        w3 = trace.record_write(0, 0x8, 3)
        assert hb_of(trace).ordered(w1.event_id, w3.event_id)

    def test_cross_thread_same_address_unordered(self):
        trace = Trace()
        w1 = trace.record_write(0, 0x8, 1)
        w2 = trace.record_write(1, 0x8, 2)
        hb = hb_of(trace)
        assert not hb.ordered(w1.event_id, w2.event_id)


class TestSynchronizesWith:
    def test_release_to_acquire_sw(self):
        trace = Trace()
        rel = trace.record_write(0, 0x8, 1, MemOrder.RELEASE)
        acq = trace.record_read(1, 0x8, MemOrder.ACQUIRE)
        assert hb_of(trace).ordered(rel.event_id, acq.event_id)

    def test_no_sw_without_release(self):
        trace = Trace()
        w = trace.record_write(0, 0x8, 1)  # plain
        acq = trace.record_read(1, 0x8, MemOrder.ACQUIRE)
        assert not hb_of(trace).ordered(w.event_id, acq.event_id)

    def test_no_sw_without_acquire(self):
        trace = Trace()
        rel = trace.record_write(0, 0x8, 1, MemOrder.RELEASE)
        r = trace.record_read(1, 0x8)  # plain
        assert not hb_of(trace).ordered(rel.event_id, r.event_id)

    def test_sw_through_release_cas(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1, MemOrder.RELEASE)
        cas = trace.record_rmw(1, 0x8, 1, 2, MemOrder.ACQ_REL)
        w = trace.record_write(1, 0x10, 3)
        hb = hb_of(trace)
        assert hb.ordered(0, cas.event_id)
        assert hb.ordered(cas.event_id, w.event_id)  # acquire side
        assert hb.ordered(0, w.event_id)             # transitive

    def test_figure1_required_ordering(self):
        """The paper's message-passing core: W1 hb Rel hb Acq hb W4."""
        trace = Trace()
        w1 = trace.record_write(0, 0x100, 10)                 # node field
        rel = trace.record_rmw(0, 0x200, None, 0x100,
                               MemOrder.RELEASE)              # link CAS
        acq = trace.record_read(1, 0x200, MemOrder.ACQUIRE)
        w4 = trace.record_write(1, 0x300, 20)
        hb = hb_of(trace)
        assert hb.ordered(w1.event_id, rel.event_id)
        assert hb.ordered(rel.event_id, acq.event_id)
        assert hb.ordered(acq.event_id, w4.event_id)
        assert hb.ordered(w1.event_id, w4.event_id)


class TestQueries:
    def test_ordered_rejects_bad_ids(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        hb = hb_of(trace)
        with pytest.raises(IndexError):
            hb.ordered(0, 5)

    def test_not_self_ordered(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        assert not hb_of(trace).ordered(0, 0)

    def test_predecessors(self):
        trace = Trace()
        w = trace.record_write(0, 0x8, 1)
        rel = trace.record_write(0, 0x10, 2, MemOrder.RELEASE)
        hb = hb_of(trace)
        assert hb.predecessors(rel.event_id) == {w.event_id}
        assert hb.predecessors(w.event_id) == set()

    def test_write_pairs_on_figure1(self):
        trace = Trace()
        trace.record_write(0, 0x100, 10)
        trace.record_write(0, 0x200, 99, MemOrder.RELEASE)
        trace.record_read(1, 0x200, MemOrder.ACQUIRE)
        trace.record_write(1, 0x300, 20)
        pairs = {(a.event_id, b.event_id)
                 for a, b in hb_of(trace).write_pairs()}
        assert (0, 1) in pairs       # W1 -> Rel
        assert (1, 3) in pairs       # Rel -> W4 (via acquire)
        assert (0, 3) in pairs       # transitive

    def test_max_events_guard(self):
        trace = Trace()
        for i in range(10):
            trace.record_write(0, 0x8, i)
        with pytest.raises(ValueError):
            HappensBefore(trace.events, max_events=5)

    def test_validate_read_values_clean(self):
        trace = Trace()
        trace.record_write(0, 0x8, 1)
        trace.record_read(1, 0x8)
        assert hb_of(trace).validate_read_values() == []


@pytest.mark.slow
class TestHbProperties:
    @st.composite
    def random_trace(draw):
        trace = Trace()
        n = draw(st.integers(2, 40))
        for _ in range(n):
            tid = draw(st.integers(0, 2))
            addr = draw(st.integers(0, 4)) * 8
            kind = draw(st.sampled_from(["r", "w", "cas"]))
            order = draw(st.sampled_from(list(MemOrder)))
            if kind == "r":
                trace.record_read(tid, addr, order)
            elif kind == "w":
                trace.record_write(tid, addr, draw(st.integers(0, 9)),
                                   order)
            else:
                trace.record_rmw(tid, addr, draw(st.integers(0, 9)),
                                 draw(st.integers(0, 9)), order)
        return trace

    @given(random_trace())
    @settings(max_examples=60, deadline=None)
    def test_hb_respects_execution_order(self, trace):
        """All hb edges point forward in the (total) execution order."""
        hb = hb_of(trace)
        for later in range(len(trace.events)):
            for earlier in hb.predecessors(later):
                assert earlier < later

    @given(random_trace())
    @settings(max_examples=60, deadline=None)
    def test_hb_is_transitive(self, trace):
        hb = hb_of(trace)
        n = len(trace.events)
        for c in range(n):
            preds_c = hb.predecessors(c)
            for b in preds_c:
                assert hb.predecessors(b) <= preds_c

    @given(random_trace())
    @settings(max_examples=40, deadline=None)
    def test_program_order_to_release_always_hb(self, trace):
        hb = hb_of(trace)
        events = trace.events
        for rel in events:
            if not rel.is_release:
                continue
            for prior in events[:rel.event_id]:
                if prior.thread_id == rel.thread_id:
                    assert hb.ordered(prior.event_id, rel.event_id)

    @given(random_trace())
    @settings(max_examples=40, deadline=None)
    def test_reads_consistent(self, trace):
        assert hb_of(trace).validate_read_values() == []
