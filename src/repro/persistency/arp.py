"""ARP: acquire-release persistency (Kolli et al., ISCA'17).

Included to demonstrate the paper's central negative result (Section 3):
the ARP rule is **too weak** to recover a log-free data structure. ARP
only guarantees

    W  po-> Rel  sw-> Acq  po-> W'   =>   W  p-> W'

and in particular allows a release to persist *before* the writes that
precede it in program order — exactly the Figure 1(e) failure where a
linked-list node's link persists before the node's fields.

The model here follows the persist-buffer-based implementation the ARP
paper builds on (delegated persist ordering): every store enqueues a
word persist; buffer epochs advance when an *acquire* finds the
release-flag raised (the one-sided barrier of Section 3.2). Within an
epoch persists are unordered; epochs drain in order; a synchronizing
acquire additionally chains the acquiring thread's next epoch behind
the releasing thread's persists so far — which enforces the ARP rule,
and nothing stronger. The buffer is unbounded, so ARP never stalls.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coherence.l1cache import CacheLine
from repro.consistency.events import MemoryEvent
from repro.persistency.base import PersistencyMechanism


class ARPMechanism(PersistencyMechanism):
    """One-sided barriers with ARP's (insufficient) semantics."""

    name = "arp"
    enforces_rp = False
    #: ARP does enforce its own (weaker) cross-thread rule.
    enforces_arp = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cores = self.config.num_cores
        self._release_flag: List[bool] = [False] * cores
        # Ack time of all epochs already closed (the drain chain).
        self._closed_ack: List[int] = [0] * cores
        # Running max ack of the open epoch's persists.
        self._open_ack: List[int] = [0] * cores

    def _enqueue_persist(self, core: int, event: MemoryEvent,
                         now: int) -> None:
        """Word-granular persist into the per-thread buffer chain."""
        line_addr = event.addr & ~(self.config.line_bytes - 1)
        record = self.nvm.issue_persist(
            line_addr, {event.addr: (event.value, event.event_id)},
            now, after=self._closed_ack[core])
        self._record_core[record.issue_seq] = core
        self._open_ack[core] = max(self._open_ack[core],
                                   record.complete_time)
        self.stats[core].persists_issued += 1
        self.stats[core].writebacks_total += 1
        obs = self.obs
        if obs is not None:
            obs.count("arp.word_persists")
            obs.span(f"nvm-ch{self.nvm.channel_for(line_addr)}",
                     f"persist c{core}", record.issue_time,
                     record.complete_time - record.issue_time,
                     cat="persist")
            if obs.provenance is not None:
                obs.provenance.note_word_persist(core, record,
                                                 trigger="store-buffer")

    def on_write(self, core: int, line: CacheLine, event: MemoryEvent,
                 now: int) -> int:
        # Persistency is handled by the buffer; the cache line carries
        # no persistency metadata under ARP.
        self._enqueue_persist(core, event, now)
        return 0

    def on_release(self, core: int, line: CacheLine, event: MemoryEvent,
                   now: int) -> int:
        """No barrier on a release — only the flag is raised (§3.2)."""
        self._enqueue_persist(core, event, now)
        self._release_flag[core] = True
        return 0

    def on_acquire(self, core: int, event: MemoryEvent, now: int,
                   sync_source: Optional[int] = None) -> int:
        """Place a full persist barrier iff the flag is raised."""
        chain_from_source = 0
        if sync_source is not None and sync_source != core:
            chain_from_source = max(self._closed_ack[sync_source],
                                    self._open_ack[sync_source])
        if self._release_flag[core] or chain_from_source:
            self.stats[core].barrier_count += 1
            if self.obs is not None:
                self.obs.count("arp.acquire_barriers")
            self._closed_ack[core] = max(self._closed_ack[core],
                                         self._open_ack[core],
                                         chain_from_source)
            self._open_ack[core] = 0
            self._release_flag[core] = False
        return 0

    def drain(self, now: int) -> int:
        # All persists are already enqueued; nothing blocks.
        return 0
