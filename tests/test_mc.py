"""Tests for the DPOR small-scope model checker (repro.mc).

The load-bearing pins: DPOR covers every Mazurkiewicz trace class of
every suite program exactly once (against brute-force enumeration),
the principal-ideal verdict agrees with exhaustive crash-state
enumeration, the Px86-derived axioms agree with rp_model's obligation
pairs on every explored trace, and ARP/NOP witnesses round-trip
through the fuzzer's repro-file replay.
"""

import json

import pytest

from repro.consistency.happens_before import HappensBefore
from repro.consistency.litmus import (
    all_interleavings,
    count_interleavings,
    figure1_insert,
    figure1_initial_memory,
    figure1_sequential_schedule,
    read,
    run_interleaving,
    write,
)
from repro.fuzz.reprofile import LitmusReproFile, replay_repro
from repro.mc import __main__ as mc_main
from repro.mc.checker import DEFAULT_MECHANISMS, check_program
from repro.mc.dpor import (
    DependencyOrder,
    DPORExplorer,
    explore_program,
    trace_key,
)
from repro.mc.judge import (
    cut_violations,
    enumerate_crash_states,
    judge_trace,
    materialize_persist_log,
)
from repro.mc.programs import PROGRAMS, SUITE, get_program
from repro.mc.px86 import px86_write_pairs
from repro.persistency.rp_model import persist_sequence_from_log


def _run(program, schedule):
    return run_interleaving(program.program(), schedule,
                            init=program.initial_memory())


def _fig1_trace():
    return run_interleaving(figure1_insert(),
                            figure1_sequential_schedule(),
                            init=figure1_initial_memory())


class TestDependencyOrder:
    def test_program_order_is_dependency(self):
        # Same-thread ops depend even on disjoint words (po edge).
        trace = run_interleaving([[write(0x8, 1), read(0x10)]], [0, 0])
        dep = DependencyOrder(trace.events)
        assert dep.ordered(0, 1)

    def test_disjoint_cross_thread_ops_independent(self):
        trace = run_interleaving([[write(0x8, 1)], [write(0x10, 2)]],
                                 [0, 1])
        dep = DependencyOrder(trace.events)
        assert not dep.ordered(0, 1)
        assert not dep.ordered(1, 0)

    def test_conflicting_accesses_dependent(self):
        trace = run_interleaving([[write(0x8, 1)], [read(0x8)]], [0, 1])
        dep = DependencyOrder(trace.events)
        assert dep.ordered(0, 1)

    def test_read_read_same_word_independent(self):
        trace = run_interleaving([[read(0x8)], [read(0x8)]], [0, 1])
        dep = DependencyOrder(trace.events)
        assert not dep.ordered(0, 1)
        assert not dep.ordered(1, 0)


class TestTraceKey:
    def test_equivalent_schedules_same_key(self):
        # Disjoint writers: every interleaving is one class.
        program = [[write(0x8, 1), write(0x10, 2)],
                   [write(0x18, 3), write(0x20, 4)]]
        keys = {trace_key(run_interleaving(program, s))
                for s in all_interleavings(program)}
        assert len(keys) == 1

    def test_conflicting_orders_distinct_keys(self):
        program = [[write(0x8, 1)], [read(0x8)]]
        k_wr = trace_key(run_interleaving(program, [0, 1]))
        k_rw = trace_key(run_interleaving(program, [1, 0]))
        assert k_wr != k_rw


class TestDPORCoverage:
    @pytest.mark.parametrize("name", SUITE)
    def test_every_class_exactly_once(self, name):
        """The headline DPOR pin: class sets identical to brute force,
        no class explored twice, strictly fewer schedules run."""
        program = PROGRAMS[name]
        schedules, stats = explore_program(program.program())
        dpor_keys = [trace_key(_run(program, s)) for s in schedules]
        brute_keys = {trace_key(_run(program, s))
                      for s in all_interleavings(program.program())}
        assert set(dpor_keys) == brute_keys
        assert len(dpor_keys) == len(set(dpor_keys))
        assert len(schedules) < stats.interleavings

    def test_bcast4_has_eight_classes(self):
        # 3 independent reader-vs-release orientations => 2^3 classes.
        schedules, _stats = explore_program(
            PROGRAMS["bcast4"].program())
        assert len(schedules) == 8

    def test_mp3_chain_interleaving_count(self):
        program = PROGRAMS["mp3_chain"]
        assert program.interleavings == 560
        assert count_interleavings(program.program()) == 560
        assert len(list(all_interleavings(program.program()))) == 560

    def test_reduction_reported(self):
        _schedules, stats = explore_program(
            PROGRAMS["figure1_insert"].program())
        assert stats.interleavings == 126
        assert stats.schedules_explored == 3
        assert stats.reduction == pytest.approx(42.0)

    def test_explorer_run_is_idempotent(self):
        explorer = DPORExplorer(PROGRAMS["mp3_chain"].program())
        first = explorer.run()
        second = explorer.run()
        assert first == second


class TestJudge:
    def test_arp_witness_on_sequential_figure1(self):
        """The paper's Figure 1(e): ARP may persist the link CAS
        before the node fields it releases."""
        trace = _fig1_trace()
        judgements = judge_trace(trace, list(DEFAULT_MECHANISMS))
        for name in ("sb", "bb", "lrp"):
            assert judgements[name].clean, name
        for name in ("arp", "nop"):
            assert not judgements[name].clean, name
        witness = judgements["arp"].witness
        # The violating state exposes the link CAS without the fields.
        rmw = next(e for e in trace.events
                   if e.kind.value == "rmw" and e.thread_id == 0)
        assert witness.visible_event == rmw.event_id
        assert witness.missing_event < rmw.event_id

    @pytest.mark.parametrize("mechanism", DEFAULT_MECHANISMS)
    def test_principal_ideal_matches_exhaustive(self, mechanism):
        """judge_trace's O(m^2) verdict == the 2^m enumeration."""
        trace = _fig1_trace()
        judgement = judge_trace(trace, [mechanism])[mechanism]
        exhaustive_clean = all(
            consistent for _seq, consistent
            in enumerate_crash_states(trace, mechanism))
        assert judgement.clean == exhaustive_clean

    def test_witness_state_is_enumerated_and_inconsistent(self):
        trace = _fig1_trace()
        witness = judge_trace(trace, ["arp"])["arp"].witness
        states = {tuple(seq): consistent for seq, consistent
                  in enumerate_crash_states(trace, "arp")}
        assert states[tuple(witness.persist_sequence)] is False

    def test_materialized_log_preserves_sequence(self):
        trace = _fig1_trace()
        witness = judge_trace(trace, ["arp"])["arp"].witness
        nvm = materialize_persist_log(trace,
                                      list(witness.persist_sequence))
        replayed = persist_sequence_from_log(
            trace, [r.word_events() for r in nvm.persist_log()])
        assert replayed == list(witness.persist_sequence)

    def test_materialize_rejects_non_write(self):
        trace = _fig1_trace()
        a_read = next(e for e in trace.events
                      if not e.is_write_effect).event_id
        with pytest.raises(ValueError, match="not a write"):
            materialize_persist_log(trace, [a_read])

    def test_witness_confirmed_by_rpchecker(self):
        trace = _fig1_trace()
        witness = judge_trace(trace, ["arp"])["arp"].witness
        count, problems = cut_violations(
            trace, list(witness.persist_sequence))
        assert count > 0
        assert problems

    def test_execution_prefixes_are_clean(self):
        trace = _fig1_trace()
        writes = [e.event_id for e in trace.events if e.is_write_effect]
        for prefix in range(len(writes) + 1):
            count, _ = cut_violations(trace, writes[:prefix])
            assert count == 0, f"prefix {prefix} flagged"


class TestPx86CrossCheck:
    def test_agrees_with_rp_model_on_all_figure1_schedules(self):
        """The independently-derived Px86 axioms reconstruct exactly
        rp-mode write_pairs on all 126 figure-1 interleavings."""
        program = PROGRAMS["figure1_insert"]
        for schedule in all_interleavings(program.program()):
            trace = _run(program, schedule)
            hb = HappensBefore.from_trace(trace, mode="rp")
            rp_pairs = {(a.event_id, b.event_id)
                        for a, b in hb.write_pairs()}
            assert px86_write_pairs(trace) == rp_pairs, schedule

    def test_agrees_on_dpor_representatives_of_suite(self):
        for name in SUITE:
            program = PROGRAMS[name]
            schedules, _ = explore_program(program.program())
            for schedule in schedules:
                trace = _run(program, schedule)
                hb = HappensBefore.from_trace(trace, mode="rp")
                rp_pairs = {(a.event_id, b.event_id)
                            for a, b in hb.write_pairs()}
                assert px86_write_pairs(trace) == rp_pairs, (name,
                                                            schedule)


class TestCheckProgram:
    def test_figure1_contract(self):
        check = check_program("figure1_insert")
        assert check.contract_ok
        assert check.clean_map() == {"sb": True, "bb": True,
                                     "lrp": True, "arp": False,
                                     "nop": False}

    @pytest.mark.slow
    @pytest.mark.parametrize("hb_mode", ["rp", "rc"])
    @pytest.mark.parametrize("name", SUITE)
    def test_dpor_verdicts_match_brute_force(self, name, hb_mode):
        """Satellite pin: DPOR == brute-force verdicts for every canned
        program under every mechanism, in both hb modes."""
        dpor = check_program(name, method="dpor", hb_mode=hb_mode,
                             cross_check=False)
        brute = check_program(name, method="brute", hb_mode=hb_mode,
                              cross_check=False)
        assert dpor.clean_map() == brute.clean_map()

    def test_unknown_program_raises(self):
        with pytest.raises(ValueError, match="unknown litmus program"):
            check_program("no_such_program")

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown exploration"):
            check_program("figure1_insert", method="bfs")


class TestWitnessRoundTrip:
    def test_repro_file_replays(self, tmp_path):
        check = check_program("figure1_insert", out_dir=str(tmp_path))
        path = check.verdicts["arp"].repro_path
        assert path is not None
        result = replay_repro(path)
        assert result["ok"]
        assert result["program"] == "figure1_insert"
        assert result["mechanism"] == "arp"
        assert result["replayed"]["kind"] == "litmus-cut"

    def test_tampered_verdict_fails_replay(self, tmp_path):
        check = check_program("figure1_insert", out_dir=str(tmp_path))
        path = check.verdicts["nop"].repro_path
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["verdict"]["problems"] = ["doctored diagnosis"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        assert not replay_repro(path)["ok"]

    def test_bad_thread_id_in_schedule_raises(self, tmp_path):
        repro = LitmusReproFile(
            program="figure1_insert", mechanism="arp",
            schedule=[-1] * 9, persist_sequence=[0],
            verdict={"kind": "litmus-cut", "problems": []})
        path = tmp_path / "bad.json"
        repro.save(str(path))
        with pytest.raises(ValueError, match="invalid thread id"):
            replay_repro(str(path))

    def test_non_write_persist_sequence_is_mismatch(self, tmp_path):
        program = get_program("figure1_insert")
        trace = _run(program, figure1_sequential_schedule())
        a_read = next(e for e in trace.events
                      if not e.is_write_effect).event_id
        repro = LitmusReproFile(
            program="figure1_insert", mechanism="arp",
            schedule=figure1_sequential_schedule(),
            persist_sequence=[a_read],
            verdict={"kind": "litmus-cut", "problems": []})
        path = tmp_path / "nonwrite.json"
        repro.save(str(path))
        result = replay_repro(str(path))
        assert not result["ok"]
        assert result["replayed"]["kind"] == "mismatch"


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert mc_main.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in PROGRAMS:
            assert name in out

    def test_check_single_program_holds(self, capsys):
        assert mc_main.main(["--program", "figure1_insert",
                             "--quiet"]) == 0
        assert "contract HOLDS" in capsys.readouterr().out

    def test_unknown_program_exits_two(self, capsys):
        assert mc_main.main(["--program", "bogus"]) == 2
        assert "unknown litmus program" in capsys.readouterr().err

    @pytest.mark.slow
    def test_selftest_passes(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_mc.json"
        assert mc_main.main(["--selftest", "--quiet",
                             "--bench-out", str(bench)]) == 0
        report = json.loads(bench.read_text())
        assert report["ok"]
        assert all(report["checks"].values())
        # Reduction is the headline number: strictly over 1x overall.
        assert report["totals"]["reduction"] > 1.0
