"""Post-crash continuation: *null recovery* made operational.

Izraelevitz & Scott's criterion — the one RP exists to satisfy — says
an LFD whose NVM image is a consistent cut needs **no recovery code**:
a restarted program maps the heap and keeps operating. This module
performs exactly that experiment:

1. take a finished run and a crash point (persist-log prefix),
2. boot a *fresh machine* whose memory is the crash image,
3. run new workers against the very same structure object
   (its root/bucket pointers are plain heap addresses), and
4. verify the continued execution is linearizable with respect to the
   keys that survived the crash.

This is the strongest recovery check in the suite: beyond structural
validity, the recovered structure must actually *work*.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.common.params import MachineConfig
from repro.common.rng import make_rng
from repro.core.machine import Machine
from repro.core.scheduler import Scheduler
from repro.core.simulator import SimulationResult
from repro.lfds.base import LogFreeStructure


@dataclasses.dataclass
class ContinuationResult:
    """Outcome of operating on a recovered crash image."""

    prefix_len: int
    recovered_keys: Set[int]
    machine: Machine
    results: List[object]
    final_keys: Set[int]

    @property
    def ok(self) -> bool:
        return True  # construction only succeeds if verification passed


class RecoveryReplayError(AssertionError):
    """The recovered structure misbehaved during continuation."""


def recover_and_continue(result: SimulationResult, prefix_len: int, *,
                         num_threads: int = 2, ops_per_thread: int = 16,
                         mechanism: str = "lrp", seed: int = 99,
                         config: Optional[MachineConfig] = None
                         ) -> ContinuationResult:
    """Crash ``result`` after ``prefix_len`` persists, then keep going.

    The continuation runs a fresh insert/delete/contains mix and checks
    every operation against a set oracle seeded with the recovered
    keys; the final contents must match the oracle as well. Raises
    :class:`RecoveryReplayError` on any divergence.
    """
    structure = result.structure
    image = result.nvm.image_after_prefix(prefix_len)
    report = structure.validate_image(image)
    if not report.ok:
        raise RecoveryReplayError(
            f"crash image at prefix {prefix_len} is not null-"
            f"recoverable: {report.problems[:2]}")
    recovered = set(report.live_keys or set())

    config = config or result.config
    machine = Machine(config, mechanism)
    machine.install_initial_state(image)

    key_range = result.spec.effective_key_range
    results: List[object] = []
    oracle = set(recovered)
    is_queue = result.spec.structure == "queue"

    def worker(thread_id: int):
        rng = make_rng(seed, "continuation", thread_id)
        structure.use_arena(1000 + thread_id)
        for op_index in range(ops_per_thread):
            key = rng.randrange(key_range)
            action = rng.choice(["insert", "delete", "contains"])
            if is_queue:
                if action == "insert":
                    value = 50_000_000 + thread_id * 1000 + op_index
                    ok = yield from structure.insert(key, value,
                                                     tid=1000 + thread_id)
                    results.append(("insert", value, ok))
                else:
                    value = yield from structure.dequeue()
                    results.append(("delete", None, value))
            elif action == "insert":
                ok = yield from structure.insert(key, key,
                                                 tid=1000 + thread_id)
                results.append(("insert", key, ok))
            elif action == "delete":
                ok = yield from structure.delete(key)
                results.append(("delete", key, ok))
            else:
                ok = yield from structure.contains(key)
                results.append(("contains", key, ok))

    scheduler = Scheduler(
        machine, [lambda tid: worker(tid) for _ in range(num_threads)])
    makespan = scheduler.run()
    machine.finish(makespan)

    final = structure.collect_keys(machine.trace.memory_snapshot())
    _verify_continuation(result.spec.structure, recovered, results,
                         final)
    return ContinuationResult(prefix_len=prefix_len,
                              recovered_keys=recovered,
                              machine=machine, results=results,
                              final_keys=final)


def _verify_continuation(structure_name: str, recovered: Set[int],
                         results: List[object],
                         final: Set[int]) -> None:
    if structure_name == "queue":
        enqueued = set(recovered)
        dequeued: List[object] = []
        for op, value, outcome in results:
            if op == "insert" and outcome:
                enqueued.add(value)
            elif op == "delete" and outcome is not None:
                dequeued.append(outcome)
        if len(dequeued) != len(set(dequeued)):
            raise RecoveryReplayError("double dequeue after recovery")
        phantom = set(dequeued) - enqueued
        if phantom:
            raise RecoveryReplayError(
                f"dequeued values that were never enqueued: "
                f"{sorted(phantom)[:5]}")
        expected = enqueued - set(dequeued)
        if final != expected:
            raise RecoveryReplayError(
                f"queue contents diverged after recovery: "
                f"missing={sorted(expected - final)[:5]} "
                f"extra={sorted(final - expected)[:5]}")
        return

    # Set structures: single-oracle check only works for a serial
    # continuation; with concurrency use net counts per key.
    net: Dict[int, int] = {key: 1 for key in recovered}
    for op, key, outcome in results:
        if op == "insert" and outcome:
            net[key] = net.get(key, 0) + 1
        elif op == "delete" and outcome:
            net[key] = net.get(key, 0) - 1
    expected = set()
    for key, count in net.items():
        if count not in (0, 1):
            raise RecoveryReplayError(
                f"impossible net count for key {key} after recovery "
                f"(count={count})")
        if count == 1:
            expected.add(key)
    if final != expected:
        raise RecoveryReplayError(
            f"contents diverged after recovery: "
            f"missing={sorted(expected - final)[:5]} "
            f"extra={sorted(final - expected)[:5]}")


def continuation_sweep(result: SimulationResult, *,
                       num_points: int = 8, seed: int = 0,
                       **kwargs) -> List[ContinuationResult]:
    """Recover-and-continue at several crash points of one run."""
    from repro.core.recovery import crash_points

    log_len = len(result.nvm.persist_log())
    outcomes = []
    for prefix in crash_points(log_len, num_points, seed):
        outcomes.append(recover_and_continue(result, prefix, **kwargs))
    return outcomes
