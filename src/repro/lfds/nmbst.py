"""The Natarajan–Mittal lock-free external BST (PPoPP'14).

This is the algorithm behind SynchroBench's "balanced tree" workload
the paper evaluates. It is *external*: internal nodes only route
(both children always present), leaves carry the keys. Deletion is
edge-based: the deleter **flags** the parent→leaf edge (the
linearization point), **tags** the sibling edge to freeze it, then
**splices** the parent out by swinging the ancestor's edge to the
sibling — with every traversal helping complete flagged/tagged
operations it encounters.

Tag bits live in the low bits of child-pointer words (nodes are
8-byte aligned): bit 0 = FLAG (leaf under deletion), bit 1 = TAG
(edge frozen for a splice).

Compared with the tombstone BST (`repro.lfds.bst`), every update here
allocates/frees real nodes (insert: a leaf + an internal; delete:
frees both), reproducing the write-intensity that makes BST the
paper's biggest LRP-over-BB win.

Annotations follow the DRF discipline: child-pointer loads are
acquires, the flag/tag/splice/insert CASes are releases, node
initialization is plain.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.consistency.events import MemOrder
from repro.core.thread import cas, load, store
from repro.lfds.base import (
    KEY_MAX,
    LogFreeStructure,
    NULL,
    OpGen,
    RecoveryReport,
    Word,
    alloc_header_write,
    field,
    free_header_write,
    header_addr,
)
from repro.memory.address import HeapAllocator

# Node layout: [key, value, left, right]; a leaf has left == right == NULL.
KEY, VALUE, LEFT, RIGHT = 0, 1, 2, 3
NODE_WORDS = 4
# Byte offsets inlined in the seek/build hot paths:
# field(node, X) == node + 8 * X.
_KEY_OFF = KEY * 8
_LEFT_OFF = LEFT * 8

FLAG = 1
TAG = 2

#: Sentinel keys (all real keys are smaller than INF0).
INF0 = KEY_MAX
INF1 = KEY_MAX + 1
INF2 = KEY_MAX + 2


def addr_of(raw: Word) -> int:
    """Pointer payload of a child word (mark bits stripped)."""
    if raw is None:
        return NULL
    return raw & ~(FLAG | TAG)


def is_flagged(raw: Word) -> bool:
    return raw is not None and bool(raw & FLAG)


def is_tagged(raw: Word) -> bool:
    return raw is not None and bool(raw & TAG)


class _SeekRecord:
    """The four path positions NM's seek tracks (their Figure 2)."""

    __slots__ = ("ancestor", "successor", "parent", "leaf")

    def __init__(self, ancestor: int, successor: int, parent: int,
                 leaf: int) -> None:
        self.ancestor = ancestor
        self.successor = successor
        self.parent = parent
        self.leaf = leaf


class NMTree(LogFreeStructure):
    """Natarajan–Mittal lock-free external binary search tree.

    This is the paper's ``bstree`` workload (SynchroBench's tree).
    """

    name = "bstree"

    def __init__(self, allocator: HeapAllocator,
                 max_nodes: int = 1 << 22) -> None:
        super().__init__(allocator)
        self._max_nodes = max_nodes
        # Sentinel skeleton: R(INF2) -> (S(INF1), leaf(INF2));
        # S(INF1) -> (leaf(INF0), leaf(INF1)). Every real key routes
        # to S's left subtree.
        self._skeleton: Dict[int, Word] = {}
        self.R = self._static_node(INF2, self._skeleton)
        self.S = self._static_node(INF1, self._skeleton)
        leaf_inf0 = self._static_node(INF0, self._skeleton)
        leaf_inf1 = self._static_node(INF1, self._skeleton)
        leaf_inf2 = self._static_node(INF2, self._skeleton)
        self._skeleton[field(self.R, LEFT)] = self.S
        self._skeleton[field(self.R, RIGHT)] = leaf_inf2
        self._skeleton[field(self.S, LEFT)] = leaf_inf0
        self._skeleton[field(self.S, RIGHT)] = leaf_inf1

    def _static_node(self, key: int, memory: Dict[int, Word]) -> int:
        node = self.allocator.alloc(NODE_WORDS + 1, line_align=True) + 8
        # field()/header_addr() inlined: one call per built node, and
        # the initial build dominates setup at paper scales.
        memory[node - 8] = NODE_WORDS
        memory[node] = key
        memory[node + 8] = 0
        memory[node + 16] = NULL
        memory[node + 24] = NULL
        return node

    # ------------------------------------------------------------------
    # Seek (NM Figure 4)
    # ------------------------------------------------------------------

    def _seek(self, key: int) -> OpGen:
        """Walk to the leaf for ``key``, tracking ancestor/successor.

        Postconditions (NM's seek record): ``leaf`` is a leaf node and
        ``parent`` its parent on the traversed path; ``ancestor`` is
        the deepest path node whose edge to the next path node
        (``successor``) was *untagged* when read — every edge strictly
        below that, down to ``parent``, was tagged (frozen by pending
        splices), so the cleanup CAS operates above the frozen chain.
        """
        ancestor = self.R
        successor = self.S      # edge R->S is never flagged/tagged
        node = self.S
        node_key = INF1
        steps = 0
        while True:
            steps += 1
            if steps > self._max_nodes:
                raise RuntimeError("seek exceeded node bound")
            side_off = _LEFT_OFF if key < node_key else _LEFT_OFF + 8
            child_raw = yield load(node + side_off, MemOrder.ACQUIRE)
            child = addr_of(child_raw)
            child_left_raw = yield load(child + _LEFT_OFF,
                                        MemOrder.ACQUIRE)
            if addr_of(child_left_raw) == NULL:
                # child is a leaf: node is its parent.
                return _SeekRecord(ancestor, successor, node, child)
            # child is internal: descend through it.
            if not is_tagged(child_raw):
                ancestor = node
                successor = child
            node = child
            node_key = yield load(node + _KEY_OFF)

    # ------------------------------------------------------------------
    # Operations (NM Figures 5-7)
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int, tid=None) -> OpGen:
        while True:
            record = yield from self._seek(key)
            leaf_key = yield load(field(record.leaf, KEY))
            if leaf_key == key:
                return False
            parent_key = yield load(field(record.parent, KEY))
            child_addr = field(record.parent,
                               LEFT if key < parent_key else RIGHT)
            # Build the replacement subtree: a new leaf and a new
            # internal routing node over {new leaf, existing leaf}.
            new_leaf = self._alloc_node(NODE_WORDS, tid)
            yield alloc_header_write(new_leaf, NODE_WORDS)
            yield store(field(new_leaf, KEY), key)
            yield store(field(new_leaf, VALUE), value)
            yield store(field(new_leaf, LEFT), NULL)
            yield store(field(new_leaf, RIGHT), NULL)
            internal = self._alloc_node(NODE_WORDS, tid)
            yield alloc_header_write(internal, NODE_WORDS)
            if key < leaf_key:
                yield store(field(internal, KEY), leaf_key)
                yield store(field(internal, LEFT), new_leaf)
                yield store(field(internal, RIGHT), record.leaf)
            else:
                yield store(field(internal, KEY), key)
                yield store(field(internal, LEFT), record.leaf)
                yield store(field(internal, RIGHT), new_leaf)
            yield store(field(internal, VALUE), 0)
            ok, observed = yield cas(child_addr, record.leaf, internal,
                                     MemOrder.RELEASE)
            if ok:
                return True
            # CAS failed: if the edge still points at our leaf but is
            # flagged/tagged, help the pending delete before retrying.
            if (addr_of(observed) == record.leaf
                    and (is_flagged(observed) or is_tagged(observed))):
                yield from self._cleanup(key, record)

    def delete(self, key: int, tid=None) -> OpGen:
        injecting = True
        target_leaf = NULL
        while True:
            record = yield from self._seek(key)
            if injecting:
                leaf_key = yield load(field(record.leaf, KEY))
                if leaf_key != key:
                    return False
                parent_key = yield load(field(record.parent, KEY))
                child_addr = field(record.parent,
                                   LEFT if key < parent_key else RIGHT)
                ok, observed = yield cas(child_addr, record.leaf,
                                         record.leaf | FLAG,
                                         MemOrder.RELEASE)
                if ok:
                    # Injection succeeded: the delete is linearized.
                    injecting = False
                    target_leaf = record.leaf
                    done = yield from self._cleanup(key, record)
                    if done:
                        yield from self._retire(record.parent,
                                                target_leaf)
                        return True
                    continue
                if (addr_of(observed) == record.leaf
                        and (is_flagged(observed)
                             or is_tagged(observed))):
                    yield from self._cleanup(key, record)
                continue
            # Cleanup mode: our flag is planted; finish the splice
            # (or discover that a helper already did).
            if record.leaf != target_leaf:
                return True   # somebody completed our splice
            done = yield from self._cleanup(key, record)
            if done:
                yield from self._retire(record.parent, target_leaf)
                return True

    def _cleanup(self, key: int, record: _SeekRecord) -> OpGen:
        """Splice out the flagged leaf's parent (NM Figure 7).

        Returns True when this caller's splice CAS succeeded.
        """
        ancestor, parent = record.ancestor, record.parent
        ancestor_key = yield load(field(ancestor, KEY))
        successor_addr = field(ancestor,
                               LEFT if key < ancestor_key else RIGHT)
        parent_key = yield load(field(parent, KEY))
        if key < parent_key:
            child_addr = field(parent, LEFT)
            sibling_addr = field(parent, RIGHT)
        else:
            child_addr = field(parent, RIGHT)
            sibling_addr = field(parent, LEFT)
        child_raw = yield load(child_addr, MemOrder.ACQUIRE)
        if not is_flagged(child_raw):
            # The leaf under deletion is on the sibling side (we are
            # helping a delete of the other child).
            sibling_addr = child_addr
        # Tag the sibling edge so it cannot change under the splice.
        while True:
            sibling_raw = yield load(sibling_addr, MemOrder.ACQUIRE)
            if is_tagged(sibling_raw):
                break
            ok, _ = yield cas(sibling_addr, sibling_raw,
                              sibling_raw | TAG, MemOrder.RELEASE)
            if ok:
                sibling_raw = sibling_raw | TAG
                break
        # Splice: swing the ancestor's edge to the sibling (tag
        # cleared, flag preserved so an in-progress delete of the
        # sibling leaf carries over).
        sibling_raw = yield load(sibling_addr, MemOrder.ACQUIRE)
        ok, _ = yield cas(successor_addr, record.successor,
                          sibling_raw & ~TAG, MemOrder.RELEASE)
        return ok

    def _retire(self, parent: int, leaf: int) -> OpGen:
        """Free the spliced-out internal node and leaf (malloc traffic)."""
        yield free_header_write(parent)
        yield free_header_write(leaf)

    def contains(self, key: int) -> OpGen:
        record = yield from self._seek(key)
        leaf_key = yield load(field(record.leaf, KEY))
        return leaf_key == key

    # ------------------------------------------------------------------
    # Direct-memory build
    # ------------------------------------------------------------------

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        memory.update(self._skeleton)
        sorted_keys = sorted(set(keys))
        if sorted_keys:
            # The INF0 sentinel leaf stays in S's left subtree forever
            # (it is never deleted), guaranteeing every real leaf's
            # parent is an internal node — a delete can then never
            # splice out the sentinel S itself.
            subtree = self._build_balanced(sorted_keys + [INF0], memory)
            memory[field(self.S, LEFT)] = subtree

    def _build_balanced(self, keys: Sequence[int],
                        memory: Dict[int, Word]) -> int:
        return self._build_range(keys, 0, len(keys), memory)

    def _build_range(self, keys: Sequence[int], lo: int, hi: int,
                     memory: Dict[int, Word]) -> int:
        # Index-based recursion (same node/allocation order as slicing
        # on keys[lo:hi], without the O(n log n) copying).
        if hi - lo == 1:
            return self._static_node(keys[lo], memory)
        mid = lo + (hi - lo + 1) // 2
        node = self._static_node(keys[mid], memory)
        memory[node + 16] = self._build_range(keys, lo, mid, memory)
        memory[node + 24] = self._build_range(keys, mid, hi, memory)
        return node

    # ------------------------------------------------------------------
    # Recovery validation
    # ------------------------------------------------------------------

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems: List[str] = []
        live: Set[int] = set()
        count = 0
        # (node raw edge, low bound, high bound)
        stack: List[Tuple[Word, int, int]] = [
            (image.get(field(self.R, LEFT)), -(1 << 63), 1 << 63)]
        right_raw = image.get(field(self.R, RIGHT))
        if right_raw is not None:
            stack.append((right_raw, -(1 << 63), 1 << 63))
        while stack and not problems:
            raw, low, high = stack.pop()
            if raw is None:
                problems.append("reachable edge word never persisted")
                break
            node = addr_of(raw)
            if node == NULL:
                continue
            count += 1
            if count > self._max_nodes:
                problems.append("tree exceeds node bound (cycle?)")
                break
            key = image.get(field(node, KEY))
            left = image.get(field(node, LEFT))
            right = image.get(field(node, RIGHT))
            if key is None or left is None or right is None:
                problems.append(
                    f"node {node:#x} is linked into the tree but its "
                    "fields never persisted (inconsistent cut)")
                break
            if not low <= key <= high:
                problems.append(
                    f"BST ordering violated at {node:#x}: key {key} "
                    f"outside [{low}, {high}]")
            is_leaf = addr_of(left) == NULL and addr_of(right) == NULL
            one_null = (addr_of(left) == NULL) != (addr_of(right) == NULL)
            if one_null:
                problems.append(
                    f"internal node {node:#x} has exactly one child")
            if is_leaf:
                if key < INF0 and not is_flagged(raw):
                    live.add(key)
                if image.get(field(node, VALUE)) is None:
                    problems.append(
                        f"leaf {node:#x} value never persisted")
            else:
                stack.append((left, low, key - 1))
                stack.append((right, key, high))
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=count,
                              live_keys=live)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        return self.validate_image(memory).live_keys or set()
