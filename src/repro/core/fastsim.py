"""Batched quantum execution engine — the scheduler's fast path.

The reference loop in :meth:`repro.core.scheduler.Scheduler.run` pays
a heap pop/push and a full :meth:`Machine.execute` dispatch per memory
operation. This engine produces the *same execution bit for bit* while
doing neither, by exploiting two structural facts:

* **Quantum batching.** The scheduler always runs the thread with the
  smallest ``(clock, thread_id)`` key, and executing an op only ever
  *grows* that thread's clock. So after an op, if the thread's new key
  is still below the smallest key of every other thread (the top of
  the heap, unchanged while we stay inline), the reference loop would
  provably pick the same thread again — we keep feeding its generator
  without touching the heap until its clock crosses that bound.

* **Inline hot ops.** An L1 hit resolves entirely from the flat tables
  (`state_codes`/`lru` + the per-set slot dict); a plain read with
  trace recording off only needs ``stats.reads``, the event-id counter
  and the architectural value — the MemoryEvent it would have built is
  written nowhere and read by nobody, so it is not built. Acquire
  reads take the inline path only when the active mechanism's
  ``on_acquire`` hook is structurally a no-op (detected by method
  identity, so mechanism classes need no cooperation); everything else
  — writes, RMWs, misses, upgrades — funnels into the same
  ``Machine`` methods the reference path uses.

The engine accepts exactly one observation channel: an Observer
carrying metrics (and optionally a timeline and/or request spans) —
metric aggregates are accumulated in the flat tables of
:class:`repro.obs.fastobs.FastObs` and flushed at run end, reconciling
counter-for-counter with the reference loop, while request-boundary
clocks append straight into the :class:`repro.obs.spans.SpanTracker`
lanes. Everything else still forces the reference path:
schedule nudges, op tracing, provenance, and the tests' ``max_ops``
valve. :func:`check` names the refusal (a :class:`Refusal` enum,
surfaced as the ``fastsim_fallback`` diagnostic on results and
printable with ``REPRO_FASTSIM_DEBUG=1``); fuzz replays therefore
always take the reference min-scan loop, and the fast-vs-reference
equivalence matrix (tests/test_fastsim.py, tests/test_fastobs.py)
pins that both paths agree on stats, persist streams, coverage maps
and the full obs export. Set ``REPRO_FASTSIM=0`` to force the
reference loop everywhere.
"""

from __future__ import annotations

import enum
import gc
import heapq
import os
import sys
from typing import Callable, Optional

from repro.coherence.l1cache import (
    EXCLUSIVE_CODE,
    MODIFIED_CODE,
    SHARED_CODE,
)
from repro.consistency.events import MemOrder
from repro.core.thread import OpKind
from repro.obs.fastobs import FastObs
from repro.obs.spans import REQUEST_BOUNDARY as _SPAN_BOUNDARY
from repro.persistency.base import PersistencyMechanism
from repro.persistency.lrp import LRPMechanism

_WORK = OpKind.WORK
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_ACQUIRE = MemOrder.ACQUIRE
_ACQ_REL = MemOrder.ACQ_REL
_NEVER = float("inf")

#: Progress callback ``(executed_ops, current_clock)`` invoked every
#: :data:`HEARTBEAT_OPS` executed ops. Installed by
#: :mod:`repro.exp.runner` to feed worker heartbeats; the callback must
#: never mutate simulator state (wall-clock side effects only).
PROGRESS_HOOK: Optional[Callable[[int, int], None]] = None

#: Op interval between PROGRESS_HOOK invocations. Coarse on purpose:
#: the hook does wall-clock throttled I/O, and one check per this many
#: ops keeps the hot loop's cost at a single integer compare.
HEARTBEAT_OPS = 4096

_MISSING = object()


class Refusal(enum.Enum):
    """Machine-readable reasons the batch engine declines a run.

    ``value`` is the stable string recorded as the
    ``fastsim_fallback`` diagnostic on
    :class:`~repro.core.simulator.SimulationResult` and
    :class:`~repro.exp.runner.RunSummary`.
    """

    ENV_DISABLED = "env-disabled"
    SCHEDULE_NUDGES = "schedule-nudges"
    MAX_OPS = "max-ops"
    OBSERVER_TRACE = "observer-trace"
    OBSERVER_PROVENANCE = "observer-provenance"
    OBSERVER_UNKNOWN = "observer-unknown"


def check(scheduler) -> Optional[Refusal]:
    """Why the batch engine must refuse this run — None when eligible.

    Metrics/timeline/spans observers are accepted (FastObs batches
    the aggregates, span lanes are plain appends); trace or provenance
    collection — and observer objects
    that don't expose the Observer surface at all — still force the
    reference loop, as do schedule nudges and the ``max_ops`` valve.
    With ``REPRO_FASTSIM_DEBUG=1`` the refusal is printed to stderr.
    """
    refusal = _check(scheduler)
    if (refusal is not None
            and os.environ.get("REPRO_FASTSIM_DEBUG") == "1"):
        print(f"[fastsim] taking the reference loop: {refusal.value}",
              file=sys.stderr)
    return refusal


def _check(scheduler) -> Optional[Refusal]:
    if os.environ.get("REPRO_FASTSIM", "1") == "0":
        return Refusal.ENV_DISABLED
    if scheduler._nudges is not None:
        return Refusal.SCHEDULE_NUDGES
    if scheduler.max_ops is not None:
        return Refusal.MAX_OPS
    obs = scheduler.machine.obs
    if obs is None:
        return None
    trace = getattr(obs, "trace", _MISSING)
    provenance = getattr(obs, "provenance", _MISSING)
    if (trace is _MISSING or provenance is _MISSING
            or getattr(obs, "metrics", None) is None
            or not hasattr(obs, "timeline")):
        return Refusal.OBSERVER_UNKNOWN
    if provenance is not None:
        return Refusal.OBSERVER_PROVENANCE
    if trace is not None:
        return Refusal.OBSERVER_TRACE
    return None


def eligible(scheduler) -> bool:
    """Whether the batch engine may run this scheduler's workload."""
    return check(scheduler) is None


def acquire_hook_is_noop(mechanism) -> bool:
    """True when ``on_acquire`` provably does nothing but return 0.

    Checked by method identity: the base-class hook and LRP's override
    (Section 5.2.2: acquires need no local action) are the only no-op
    implementations. Any mechanism that overrides the hook with real
    work — BB's barrier-on-acquire, ARP/DPO/HOPS's sync-source
    handling — fails the identity test and gets the full event-built
    path for every acquire.
    """
    hook = type(mechanism).on_acquire
    return (hook is PersistencyMechanism.on_acquire
            or hook is LRPMechanism.on_acquire)


def run(scheduler) -> int:
    """Execute the scheduler's threads to completion; the makespan.

    Caller guarantees :func:`eligible` returned True.
    """
    # The loop allocates heavily (ops, events, records) but the only
    # reference cycles it creates are line<->cache attachments, which
    # refcounting alone reclaims once detached; pausing the cyclic
    # collector avoids full-generation scans triggered by allocation
    # volume.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _run(scheduler)
    finally:
        if gc_was_enabled:
            gc.enable()


def _run(scheduler) -> int:
    machine = scheduler.machine
    config = machine.config
    compute = config.compute_cycles_per_op
    l1_hit_cycles = config.l1_hit_cycles
    line_mask = ~(config.line_bytes - 1)
    threads = scheduler.threads
    stats_list = machine.stats
    trace = machine.trace
    memory = trace._memory
    memory_get = memory.get
    # With recording off the per-read MemoryEvent is pure overhead
    # (nothing retains it); with recording on every event must exist.
    fast_reads = not trace.record
    mechanism = machine.mechanism
    acquire_noop = acquire_hook_is_noop(mechanism)
    # Every in-tree on_acquire honours acquire_ignores_event, so the
    # event can be skipped for acquire loads too: sync_source is
    # derived from the writer-meta map exactly as _sync_source would.
    acquire_inline = acquire_noop or mechanism.acquire_ignores_event
    # With recording off and an event-free acquire hook, *every* read
    # resolves inline — the per-op branch collapses to one local test.
    inline_reads = fast_reads and acquire_inline
    on_acquire = mechanism.on_acquire
    writer_meta = trace._writer_meta
    # The event-id counter is kept in a local and written back to the
    # trace only around calls that read or bump it themselves (the
    # do_* slow paths) and at exit: inline reads then pay a local
    # increment instead of an attribute read-modify-write.
    ev_count = trace._count
    do_read = machine._do_read
    do_write = machine._do_write
    do_rmw = machine._do_rmw
    coherence_access = machine.coherence_access
    l1s = machine.fabric.l1s
    heappop, heapreplace = heapq.heappop, heapq.heapreplace

    # Telemetry: aggregates accumulate in FastObs's flat tables (the
    # scheduler streams here, the fused closures write the coherence
    # slots) and flush into the Observer once at run end. Mechanisms
    # and the NVM controller keep their direct Observer attachment.
    obs = machine.obs
    if obs is not None:
        # Request spans (repro.obs.spans): raw per-thread boundary and
        # event-mark lists written directly — one identity compare and
        # two appends per boundary op, nothing else on the hot path.
        spans = getattr(obs, "spans", None)
        if spans is not None:
            sp_lanes, sp_events = spans.lanes(len(threads))
        else:
            sp_lanes = sp_events = None
        fobs = FastObs(obs, config.num_cores, l1s[0]._assoc)
        fo_interval = fobs.interval
        fo_ops = fobs.ops
        fo_mem_ops = fobs.mem_ops
        fo_cc = fobs.compute_cycles
        fo_mc = fobs.mem_cycles
        fo_nw = fobs.work_ops
        fo_wl = fobs.work_latency
        sg_o0 = fobs.seg_ops0
        sg_n0 = fobs.seg_work0
        sg_w0 = fobs.seg_latency0
        sg_c0 = fobs.seg_clock0
        tl_cw = fobs.tl_compute_window
        tl_ca = fobs.tl_compute_acc
        tl_nbc = fobs.tl_compute_nb
        tl_mw = fobs.tl_mem_window
        tl_ma = fobs.tl_mem_acc
        tl_co = fobs.tl_compute_out
        tl_mo = fobs.tl_mem_out
    else:
        fobs = None
        sp_lanes = sp_events = None
    # True only inside a boundary-straddling quantum with a timeline
    # attached; every quantum's telemetry setup re-derives it.
    fo_heavy = False
    fast_miss, fast_upgrade = machine.make_fast_path(fastobs=fobs)

    hook = PROGRESS_HOOK
    hb_next = (scheduler._executed_ops + HEARTBEAT_OPS
               if hook is not None else _NEVER)

    # L1 geometry is config-wide (identical across cores); the
    # per-thread containers are bundled into one tuple so a quantum
    # switch costs a single index + unpack.
    geom = l1s[0]
    shift = geom._line_shift
    set_mask = geom._set_mask
    num_sets = geom._num_sets
    tstate = []
    for t in threads:
        l1 = l1s[t.thread_id]
        tstate.append((t, t.gen, stats_list[t.thread_id], l1, l1._sets,
                       l1.state_codes, l1.lru, l1.lines))
    # Thread clocks at entry: the per-thread clock *delta* over the
    # run, together with the op/WORK tallies, yields the cycle split
    # for the metrics-only telemetry mode (see the run-end derivation).
    start_clocks = [t.clock for t in threads]
    # Memory-op counts are never tallied in the loop: CoreStats already
    # bumps exactly one of reads/writes/rmws once per READ/WRITE/CAS/
    # XCHG (inline paths above, _do_* entries otherwise), so a thread's
    # memory-op total over the run is its stats delta against this
    # snapshot; WORK — the only other kind — tallies its own fo_nw.
    if fobs is not None:
        start_mem = [0] * len(threads)
        for t in threads:
            s = stats_list[t.thread_id]
            start_mem[t.thread_id] = s.reads + s.writes + s.rmws
    # Timeline attached: the only mode with any per-quantum accounting.
    fo_tl = fobs is not None and fo_interval != 0

    # Heap keys are single ints, ``(clock << tshift) | tid``: the
    # packed comparison is exactly the (clock, tid) lexicographic
    # order (tid < 2**tshift), every sift compares machine ints
    # instead of tuples, and a yield allocates no tuple.
    tshift = max(1, (len(threads) - 1).bit_length())
    tmask = (1 << tshift) - 1
    heap = [(t.clock << tshift) | t.thread_id for t in threads]
    heapq.heapify(heap)
    nheap = len(heap)
    executed = scheduler._executed_ops
    # The running thread's (stale) entry stays at heap[0] for the whole
    # quantum: a yield is then one heapreplace (single sift) instead of
    # a heappush + heappop pair, and the scheduling bound — the
    # smallest key among the *other* threads — is the smaller of the
    # root's children.
    while nheap:
        tid = heap[0] & tmask
        thread, gen, stats, l1, sets, codes, lru, lines = tstate[tid]
        clock = thread.clock
        if nheap > 2:
            bound = heap[1]
            b = heap[2]
            if b < bound:
                bound = b
        elif nheap == 2:
            bound = heap[1]
        else:
            # Last thread standing: an unreachable bound erases the
            # yield check from its remaining ops.
            bound = _NEVER
        if fo_tl:
            # Quantum accounting is *derived*, not accumulated: op and
            # memory-op counts come from the CoreStats deltas, WORK
            # counts/latencies from the WORK branch's own tallies (the
            # only per-op telemetry cost; a memory op pays nothing).
            # Every op's pre-advance clock lies in
            # [clock, bound >> tshift]; when both sit below the compute
            # register's next boundary tl_nbc[tid] the whole quantum
            # stays inside the register's window ("light" — the common
            # case, quanta being much shorter than a window) and merely
            # extends the thread's open *segment*, at zero cost; its
            # charges are attributed when the segment closes. Only a
            # boundary-straddling quantum (fo_heavy) pays segment-close
            # arithmetic and per-op window tracking. Without a
            # timeline there is no per-quantum accounting at all:
            # counts and cycle splits come from the stats/clock deltas
            # at run end.
            nb_c = tl_nbc[tid]
            # _NEVER (last thread, float sentinel) has no shiftable
            # clock and its quantum is unbounded anyway: heavy path.
            fo_heavy = (clock >= nb_c or bound is _NEVER
                        or (bound >> tshift) >= nb_c)
            if fo_heavy:
                # Close the open segment: all its ops executed in
                # the compute register's window, so the whole
                # cycle split lands there in one step (cc from the
                # WORK tallies + uniform per-op compute, mc as the
                # thread's clock advance minus cc).
                cur_ops = (stats.reads + stats.writes + stats.rmws
                           - start_mem[tid] + fo_nw[tid])
                seg_ops = cur_ops - sg_o0[tid]
                if seg_ops:
                    cc = fo_wl[tid] - sg_w0[tid] + seg_ops * compute
                    tl_ca[tid] += cc
                    seg_mem = seg_ops - (fo_nw[tid] - sg_n0[tid])
                    if seg_mem:
                        mc = clock - sg_c0[tid] - cc
                        w = tl_mw[tid]
                        if w == tl_cw[tid]:
                            tl_ma[tid] += mc
                        else:
                            # The mem register trails (its window
                            # is that of the thread's last memory
                            # op); spill it forward.
                            if w >= 0:
                                tl_mo[tid].append((w, tl_ma[tid]))
                            tl_mw[tid] = tl_cw[tid]
                            tl_ma[tid] = mc
                    # Mark the segment closed *now*: the quantum
                    # may abort before its writeback (StopIteration
                    # at the top), and a closed segment must not
                    # close again at run end.
                    sg_o0[tid] = cur_ops
                    sg_n0[tid] = fo_nw[tid]
                    sg_w0[tid] = fo_wl[tid]
                    sg_c0[tid] = clock
                cw_c = tl_cw[tid]
                acc_c = tl_ca[tid]
                cw_m = tl_mw[tid]
                acc_m = tl_ma[tid]
                out_c = tl_co[tid]
                out_m = tl_mo[tid]
                # Mem next-boundary local for the per-op window
                # test (one compare; the division runs only on a
                # window crossing). -1 (no window yet) maps to
                # boundary 0 so the first op crosses.
                nb_m = (cw_m + 1) * fo_interval if cw_m >= 0 else 0

        # Resume the coroutine exactly as SimThread.next_op would.
        try:
            if thread._started:
                op = gen.send(thread._pending_result)
            else:
                thread._started = True
                op = next(gen)
        except StopIteration:
            stats.cycles = clock
            thread.clock = clock
            thread.done = True
            heappop(heap)
            nheap -= 1
            continue

        while True:
            kind = op.kind
            if kind is _READ:
                addr = op.addr
                line_addr = addr & line_mask
                if set_mask is not None:
                    set_index = (line_addr >> shift) & set_mask
                else:
                    set_index = (line_addr >> shift) % num_sets
                slot = sets[set_index].get(line_addr)
                if slot is not None:
                    # Hit: a set never maps an INVALID slot (every
                    # detach also deletes the set entry), so residency
                    # alone serves a read.
                    tick = l1._tick + 1
                    l1._tick = tick
                    lru[slot] = tick
                    stats.l1_hits += 1
                    latency = l1_hit_cycles
                else:
                    _line, latency = fast_miss(
                        tid, line_addr, clock, False, set_index)
                if inline_reads:
                    stats.reads += 1
                    ev_count += 1
                    try:
                        result = memory[addr]
                    except KeyError:
                        result = None  # uninitialized word reads as None
                    order = op.order
                    if order is _ACQUIRE or order is _ACQ_REL:
                        stats.acquires += 1
                        if not acquire_noop:
                            src = writer_meta.get(addr)
                            latency += on_acquire(
                                tid, None, clock + latency,
                                sync_source=src[0]
                                if (src is not None and src[1]
                                    and src[0] != tid) else None)
                else:
                    order = op.order
                    if fast_reads and not (order is _ACQUIRE
                                           or order is _ACQ_REL):
                        stats.reads += 1
                        ev_count += 1
                        result = memory_get(addr)
                    else:
                        trace._count = ev_count
                        result, latency = do_read(tid, op, clock, latency)
                        ev_count = trace._count
            elif kind is _WORK:
                result = None
                latency = op.cycles
                if fobs is not None:
                    # WORK is the one op kind whose compute charge is
                    # not uniform, so it is the only one tallied per
                    # op; memory-op counts and charges are derived at
                    # segment close / run end.
                    fo_nw[tid] += 1
                    fo_wl[tid] += latency
                    if sp_lanes is not None and op.site is _SPAN_BOUNDARY:
                        # ev_count here equals the reference loop's
                        # trace._count at the same decision: the batch
                        # engine executes ops in the identical global
                        # order, so event ids are assigned identically.
                        sp_lanes[tid].append(clock)
                        sp_events[tid].append(ev_count)
            else:
                addr = op.addr
                line_addr = addr & line_mask
                if set_mask is not None:
                    set_index = (line_addr >> shift) & set_mask
                else:
                    set_index = (line_addr >> shift) % num_sets
                slot = sets[set_index].get(line_addr)
                if kind is _WRITE:
                    code = codes[slot] if slot is not None else 0
                    if code == MODIFIED_CODE or code == EXCLUSIVE_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        stats.l1_hits += 1
                        if code == EXCLUSIVE_CODE:
                            codes[slot] = MODIFIED_CODE  # silent E->M
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, lines[slot], clock, l1_hit_cycles)
                        ev_count = trace._count
                    elif code == SHARED_CODE:
                        # The reference path's lookup touches the LRU
                        # before the S->M upgrade.
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        line = lines[slot]
                        latency = fast_upgrade(tid, line, clock)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    elif slot is None:
                        line, latency = fast_miss(
                            tid, line_addr, clock, True, set_index)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    else:
                        line, latency = coherence_access(
                            tid, line_addr, clock, True)
                        trace._count = ev_count
                        result, latency = do_write(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                else:  # CAS / XCHG
                    code = codes[slot] if slot is not None else 0
                    if code == MODIFIED_CODE or code == EXCLUSIVE_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        stats.l1_hits += 1
                        if code == EXCLUSIVE_CODE:
                            codes[slot] = MODIFIED_CODE
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, lines[slot], clock, l1_hit_cycles)
                        ev_count = trace._count
                    elif code == SHARED_CODE:
                        tick = l1._tick + 1
                        l1._tick = tick
                        lru[slot] = tick
                        line = lines[slot]
                        latency = fast_upgrade(tid, line, clock)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    elif slot is None:
                        line, latency = fast_miss(
                            tid, line_addr, clock, True, set_index)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count
                    else:
                        line, latency = coherence_access(
                            tid, line_addr, clock, True)
                        trace._count = ev_count
                        result, latency = do_rmw(
                            tid, op, line, clock, latency)
                        ev_count = trace._count

            if fo_heavy:
                # Mirror the reference loop's per-op narration against
                # the *pre-advance* clock: WORK charges latency+compute
                # to the compute stream; a memory op charges compute to
                # compute and the full latency (all mechanism stalls
                # included) to mem. Zero-valued window touches still
                # create window entries, exactly like Observer.tick.
                if kind is _WORK:
                    value = latency + compute
                else:
                    if clock < nb_m:
                        acc_m += latency
                    else:
                        if cw_m >= 0:
                            out_m.append((cw_m, acc_m))
                        cw_m = clock // fo_interval
                        nb_m = (cw_m + 1) * fo_interval
                        acc_m = latency
                    value = compute
                if clock < nb_c:
                    acc_c += value
                else:
                    if cw_c >= 0:
                        out_c.append((cw_c, acc_c))
                    cw_c = clock // fo_interval
                    nb_c = (cw_c + 1) * fo_interval
                    acc_c = value

            clock += latency + compute
            executed += 1
            if executed >= hb_next:
                hook(executed, clock)
                hb_next = executed + HEARTBEAT_OPS
            key = (clock << tshift) | tid
            if key > bound:
                # Another thread's key is now smaller: yield the core.
                thread.clock = clock
                thread._pending_result = result
                heapreplace(heap, key)
                break
            try:
                op = gen.send(result)
            except StopIteration:
                stats.cycles = clock
                thread.clock = clock
                thread.done = True
                heappop(heap)
                nheap -= 1
                break

        if fo_heavy:
            # Persist the window registers and start a fresh segment
            # at this quantum's end state. (Light quanta have no
            # writeback at all — nor does a StopIteration at the
            # quantum top, which `continue`s past this block leaving
            # fo_heavy for the next setup to re-derive.) Cycle counter
            # totals are recovered from the window sums at flush.
            tl_cw[tid] = cw_c
            tl_ca[tid] = acc_c
            tl_nbc[tid] = (cw_c + 1) * fo_interval \
                if cw_c >= 0 else 0
            tl_mw[tid] = cw_m
            tl_ma[tid] = acc_m
            sg_o0[tid] = (stats.reads + stats.writes + stats.rmws
                          - start_mem[tid] + fo_nw[tid])
            sg_n0[tid] = fo_nw[tid]
            sg_w0[tid] = fo_wl[tid]
            sg_c0[tid] = clock
            fo_heavy = False

    trace._count = ev_count
    scheduler._executed_ops = executed
    if fobs is not None:
        if fo_interval:
            # Materialize the op counts from the stats deltas and
            # close every thread's still-open segment (same
            # attribution as the heavy-quantum close, with the
            # thread's final clock as the segment end).
            for t in threads:
                k = t.thread_id
                s = stats_list[k]
                mem = s.reads + s.writes + s.rmws - start_mem[k]
                n = mem + fo_nw[k]
                fo_ops[k] = n
                fo_mem_ops[k] = mem
                seg_ops = n - sg_o0[k]
                if seg_ops:
                    cc = fo_wl[k] - sg_w0[k] + seg_ops * compute
                    tl_ca[k] += cc
                    seg_mem = seg_ops - (fo_nw[k] - sg_n0[k])
                    if seg_mem:
                        mc = t.clock - sg_c0[k] - cc
                        w = tl_mw[k]
                        if w == tl_cw[k]:
                            tl_ma[k] += mc
                        else:
                            if w >= 0:
                                tl_mo[k].append((w, tl_ma[k]))
                            tl_mw[k] = tl_cw[k]
                            tl_ma[k] = mc
        else:
            # Metrics-only cycle split, recovered per thread from the
            # clock delta: every op advanced the clock by
            # latency + compute, WORK latencies are compute charges
            # (tallied in fo_wl), everything else is memory latency —
            # so cc = fo_wl + ops * compute and mc is the rest. This
            # is exactly the reference loop's per-op narration summed,
            # at zero per-op cost.
            for t in threads:
                k = t.thread_id
                s = stats_list[k]
                mem = s.reads + s.writes + s.rmws - start_mem[k]
                n = mem + fo_nw[k]
                fo_ops[k] = n
                fo_mem_ops[k] = mem
                if n:
                    cc = fo_wl[k] + n * compute
                    fo_cc[k] += cc
                    fo_mc[k] += t.clock - start_clocks[k] - cc
        fobs.flush()
    return scheduler.makespan()
