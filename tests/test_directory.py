"""Unit and property tests for the MESI directory fabric."""

from hypothesis import given, settings, strategies as st

from repro.coherence.directory import CoherenceFabric
from repro.coherence.l1cache import MESIState
from repro.common.params import MachineConfig


def _fabric(cores=4):
    config = MachineConfig(num_cores=cores, l1_size_bytes=2 * 64 * 2,
                           l1_assoc=2)
    return CoherenceFabric(config)


def _big_fabric(cores=4):
    return CoherenceFabric(MachineConfig(num_cores=cores))


LINE = 0x1000


class TestBasicTransitions:
    def test_cold_read_gets_exclusive(self):
        fabric = _big_fabric()
        result = fabric.access(0, LINE, exclusive=False, now=0)
        assert not result.l1_hit
        assert result.line.state is MESIState.EXCLUSIVE

    def test_cold_write_gets_modified(self):
        fabric = _big_fabric()
        result = fabric.access(0, LINE, exclusive=True, now=0)
        assert result.line.state is MESIState.MODIFIED

    def test_second_access_hits(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=False, now=0)
        result = fabric.access(0, LINE, exclusive=False, now=10)
        assert result.l1_hit
        assert result.latency == 2  # L1 hit cycles

    def test_silent_e_to_m_upgrade(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=False, now=0)
        result = fabric.access(0, LINE, exclusive=True, now=10)
        assert result.l1_hit
        assert result.line.state is MESIState.MODIFIED

    def test_second_reader_shares(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=False, now=0)
        result = fabric.access(1, LINE, exclusive=False, now=10)
        assert result.line.state is MESIState.SHARED
        assert fabric.l1s[0].lookup(LINE).state is MESIState.SHARED

    def test_read_downgrades_modified_owner(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=True, now=0)
        result = fabric.access(1, LINE, exclusive=False, now=10)
        assert result.downgrade is not None
        assert result.downgrade.owner == 0
        assert result.downgrade.to_state is MESIState.SHARED
        assert result.downgrade.was_modified
        assert fabric.l1s[0].lookup(LINE).state is MESIState.SHARED

    def test_write_invalidates_modified_owner(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=True, now=0)
        result = fabric.access(1, LINE, exclusive=True, now=10)
        assert result.downgrade.to_state is MESIState.INVALID
        assert fabric.l1s[0].lookup(LINE) is None
        assert fabric.l1s[1].lookup(LINE).state is MESIState.MODIFIED

    def test_write_invalidates_sharers(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=False, now=0)
        fabric.access(1, LINE, exclusive=False, now=10)
        result = fabric.access(2, LINE, exclusive=True, now=20)
        assert result.invalidated_sharers == 2
        assert fabric.l1s[0].lookup(LINE) is None
        assert fabric.l1s[1].lookup(LINE) is None

    def test_s_to_m_upgrade(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=False, now=0)
        fabric.access(1, LINE, exclusive=False, now=10)
        result = fabric.access(0, LINE, exclusive=True, now=20)
        assert result.line.state is MESIState.MODIFIED
        assert result.invalidated_sharers == 1
        assert fabric.l1s[1].lookup(LINE) is None


class TestEviction:
    def test_victim_evicted_on_conflict(self):
        fabric = _fabric()  # 2 sets x 2 ways
        fabric.access(0, 0x0, exclusive=False, now=0)
        fabric.access(0, 0x80, exclusive=False, now=0)   # same set 0
        result = fabric.access(0, 0x100, exclusive=False, now=0)
        assert result.eviction is not None
        assert result.eviction.line.addr == 0x0
        assert fabric.l1s[0].lookup(0x0) is None

    def test_eviction_updates_directory(self):
        fabric = _fabric()
        fabric.access(0, 0x0, exclusive=True, now=0)
        fabric.access(0, 0x80, exclusive=False, now=0)
        fabric.access(0, 0x100, exclusive=False, now=0)  # evicts 0x0
        entry = fabric.directory_state(0x0)
        assert entry.owner is None
        # Another core can now get it exclusively without a downgrade.
        result = fabric.access(1, 0x0, exclusive=True, now=10)
        assert result.downgrade is None


class TestBlocking:
    def test_blocked_line_delays_access(self):
        fabric = _big_fabric()
        fabric.block_line_until(LINE, 10_000)
        result = fabric.access(0, LINE, exclusive=False, now=0)
        assert result.block_wait > 0
        total_before = result.latency - result.block_wait
        late = fabric.access(1, LINE, exclusive=False, now=20_000)
        assert late.block_wait == 0

    def test_block_is_per_line(self):
        fabric = _big_fabric()
        fabric.block_line_until(LINE, 10_000)
        other = fabric.access(0, 0x2000, exclusive=False, now=0)
        assert other.block_wait == 0

    def test_block_monotonic(self):
        fabric = _big_fabric()
        fabric.block_line_until(LINE, 500)
        fabric.block_line_until(LINE, 100)  # must not shrink
        assert fabric.blocked_until(LINE) == 500


class TestLatencies:
    def test_miss_latency_exceeds_hit(self):
        fabric = _big_fabric()
        miss = fabric.access(0, LINE, exclusive=False, now=0)
        hit = fabric.access(0, LINE, exclusive=False, now=10)
        assert miss.latency > hit.latency

    def test_three_hop_costs_more_than_llc(self):
        fabric = _big_fabric()
        fabric.access(0, LINE, exclusive=True, now=0)
        three_hop = fabric.access(1, LINE, exclusive=False, now=10)
        clean = fabric.access(2, 0x2000, exclusive=False, now=0)
        assert three_hop.latency > clean.latency


class TestInvariantsProperty:
    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 9), st.booleans()),
        min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_swmr_and_directory_agreement(self, accesses):
        """Single-writer-multiple-readers holds under any access mix."""
        fabric = _fabric(cores=4)
        for core, line_no, exclusive in accesses:
            line_addr = line_no * 64
            result = fabric.access(core, line_addr,
                                   exclusive=exclusive, now=0)
            assert result.line is not None
            expect = (MESIState.MODIFIED if exclusive
                      else result.line.state)
            if exclusive:
                assert result.line.state is MESIState.MODIFIED
        assert fabric.check_invariants() == []
