"""Persist provenance: *why* did each line persist, and *who paid*?

The metrics/timeline layers (PR 2/3) say how much time went to persist
stalls and when; this layer records the **causal chain** behind each
persist and each stall, which is the paper's actual argument: LRP wins
because persists are triggered lazily by specific coherence events
(eviction / downgrade of a released line) instead of eagerly at a
barrier, so fewer writebacks land on somebody's critical path.

Two record streams, both opt-in via ``Observer(provenance=True)`` and
bit-identical when enabled (the tracker only reads simulator state):

* **persist entries** — one per issued line (or word) persist:
  the *site* that dirtied the line (stable
  ``<structure>.<operation>.<step>`` ids threaded through the workload
  harness), the *trigger* from the mechanism's taxonomy (``barrier``,
  ``eviction``, ``downgrade``, ``epoch-drain``, ...), the
  release/acquire happens-before edge it enforces (owner -> requester
  cores, for coherence-triggered persists), issue/ack times, and
  whether the persist was later promoted to the critical path;
* **stall entries** — aggregated ``(site, reason) -> cycles`` charges,
  attributed to the site of the op the waiting thread was executing.
  Their sum reconciles **exactly** with
  ``RunStats.persist_stall_cycles`` (every charge goes through
  ``PersistencyMechanism._charge_stall``) — pinned by the obs selftest
  and ``tests/test_provenance.py``.

The collapsed-stack flamegraph (:mod:`repro.obs.flame`) and the
differential run comparison (:mod:`repro.obs.diff`) are both built
from the serialized form, which travels inside
``RunSummary.obs["provenance"]`` like every other obs payload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Site used when provenance is on but the op carries no site id
#: (e.g. a hand-built workload outside the harness).
UNTAGGED_SITE = "(untagged)"

#: Site attributed to end-of-run / checkpoint drains: those persists
#: and stalls happen after the last workload op completes.
DRAIN_SITE = "(drain)"

#: The canonical trigger taxonomy. Mechanisms may only use these
#: values (pinned by tests); the first four are the ones the paper's
#: argument revolves around.
TRIGGERS = (
    "barrier",        # SB's blocking full barrier flushes the epoch
    "eviction",       # a dirty line displaced from the private L1
    "downgrade",      # a remote request demotes a dirty line (hb edge)
    "epoch-drain",    # BB epoch flush / LRP RET-watermark engine run
    "release",        # a release displaces older dirty state (LRP)
    "rmw-acquire",    # LRP invariant I3: acquire-RMW persists its write
    "epoch-wrap",     # LRP epoch-id overflow drains the core
    "store-buffer",   # ARP/DPO/HOPS word persists enqueue on the store
    "drain",          # end-of-run / checkpoint drain
)


class PersistEntry:
    """One issued persist and its causal chain."""

    __slots__ = ("seq", "line", "core", "trigger", "site", "stores",
                 "foreign_stores", "issue_time", "complete_time",
                 "edge", "critical")

    def __init__(self, seq: int, line: int, core: int, trigger: str,
                 site: str, stores: int, foreign_stores: int,
                 issue_time: int, complete_time: int,
                 edge: Optional[Tuple[int, int]] = None) -> None:
        self.seq = seq
        self.line = line
        self.core = core
        self.trigger = trigger
        self.site = site
        self.stores = stores
        self.foreign_stores = foreign_stores
        self.issue_time = issue_time
        self.complete_time = complete_time
        self.edge = edge
        self.critical = False

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "seq": self.seq,
            "line": self.line,
            "core": self.core,
            "trigger": self.trigger,
            "site": self.site,
            "stores": self.stores,
            "issue": self.issue_time,
            "ack": self.complete_time,
            "critical": self.critical,
        }
        if self.foreign_stores:
            data["foreign_stores"] = self.foreign_stores
        if self.edge is not None:
            data["edge"] = list(self.edge)
        return data


class ProvenanceTracker:
    """Per-run provenance collector (created by ``Observer``).

    The machine narrates the current *site* (the op being executed —
    the simulator performs one memory op at a time, so a single slot
    suffices); the persistency mechanisms narrate stores, persists,
    stalls and critical-path promotions. Everything is read-only with
    respect to the simulation, so enabling provenance is bit-identical.
    """

    __slots__ = ("mechanism", "current_site", "persists", "stalls",
                 "stall_counts", "_dirty", "_by_seq")

    def __init__(self) -> None:
        self.mechanism = "?"
        self.current_site = UNTAGGED_SITE
        self.persists: List[PersistEntry] = []
        #: (site, reason) -> stall cycles; reconciles with
        #: ``RunStats.persist_stall_cycles`` exactly.
        self.stalls: Dict[Tuple[str, str], int] = {}
        self.stall_counts: Dict[Tuple[str, str], int] = {}
        # (core, line addr) -> [first dirtier site, stores, foreign]
        self._dirty: Dict[Tuple[int, int], List] = {}
        self._by_seq: Dict[int, PersistEntry] = {}

    # -- narration hooks ----------------------------------------------

    def begin_op(self, site: Optional[str]) -> None:
        """The machine starts executing an op tagged with ``site``."""
        self.current_site = site if site is not None else UNTAGGED_SITE

    def note_store(self, core: int, line_addr: int) -> None:
        """A store merged into a (now dirty) line's pending words."""
        key = (core, line_addr)
        entry = self._dirty.get(key)
        if entry is None:
            self._dirty[key] = [self.current_site, 1, 0]
        else:
            entry[1] += 1
            if entry[0] != self.current_site:
                entry[2] += 1

    def note_persist(self, core: int, record, trigger: str,
                     edge: Optional[Tuple[int, int]] = None) -> None:
        """A line persist was issued (mechanism ``_issue_line`` path)."""
        dirty = self._dirty.pop((core, record.line_addr), None)
        if dirty is None:
            site, stores, foreign = UNTAGGED_SITE, 0, 0
        else:
            site, stores, foreign = dirty
        entry = PersistEntry(
            seq=record.issue_seq, line=record.line_addr, core=core,
            trigger=trigger, site=site, stores=stores,
            foreign_stores=foreign, issue_time=record.issue_time,
            complete_time=record.complete_time, edge=edge)
        self.persists.append(entry)
        self._by_seq[record.issue_seq] = entry

    def note_word_persist(self, core: int, record, trigger: str) -> None:
        """A word-granular persist enqueued on the store itself
        (ARP / DPO / HOPS persist-buffer designs)."""
        entry = PersistEntry(
            seq=record.issue_seq, line=record.line_addr, core=core,
            trigger=trigger, site=self.current_site, stores=1,
            foreign_stores=0, issue_time=record.issue_time,
            complete_time=record.complete_time)
        self.persists.append(entry)
        self._by_seq[record.issue_seq] = entry

    def note_stall(self, reason: str, cycles: int) -> None:
        """Stall cycles charged to a thread (site = its current op)."""
        key = (self.current_site, reason)
        self.stalls[key] = self.stalls.get(key, 0) + cycles
        self.stall_counts[key] = self.stall_counts.get(key, 0) + 1

    def note_critical(self, seq: int) -> None:
        """The persist ``seq`` was promoted to the critical path."""
        entry = self._by_seq.get(seq)
        if entry is not None:
            entry.critical = True

    # -- aggregation ---------------------------------------------------

    def stall_total(self) -> int:
        return sum(self.stalls.values())

    def persist_counts_by_site(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.persists:
            counts[entry.site] = counts.get(entry.site, 0) + 1
        return counts

    def persist_counts_by_trigger(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.persists:
            counts[entry.trigger] = counts.get(entry.trigger, 0) + 1
        return counts

    def stall_cycles_by_site(self) -> Dict[str, int]:
        cycles: Dict[str, int] = {}
        for (site, _reason), value in self.stalls.items():
            cycles[site] = cycles.get(site, 0) + value
        return cycles

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict dump (picklable / JSON-able; travels in
        ``RunSummary.obs["provenance"]``)."""
        return {
            "mechanism": self.mechanism,
            "persists": [entry.to_dict() for entry in self.persists],
            "stalls": [
                [site, reason, cycles, self.stall_counts[(site, reason)]]
                for (site, reason), cycles in sorted(self.stalls.items())
            ],
        }


def stall_folds(data: Dict[str, object]) -> Dict[Tuple[str, str], int]:
    """``(site, reason) -> cycles`` from a serialized tracker dump."""
    return {
        (site, reason): cycles
        for site, reason, cycles, _count in data.get("stalls", [])
    }


def persist_entries(data: Dict[str, object]) -> List[Dict[str, object]]:
    """The persist entries of a serialized dump, in issue order."""
    entries = list(data.get("persists", []))
    entries.sort(key=lambda e: e["seq"])
    return entries


def site_persist_counts(data: Dict[str, object]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for entry in persist_entries(data):
        site = entry["site"]
        counts[site] = counts.get(site, 0) + 1
    return counts


def site_stall_cycles(data: Dict[str, object]) -> Dict[str, int]:
    cycles: Dict[str, int] = {}
    for site, _reason, value, _count in data.get("stalls", []):
        cycles[site] = cycles.get(site, 0) + value
    return cycles
