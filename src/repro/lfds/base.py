"""Shared infrastructure for the log-free data structures (LFDs).

Every LFD:

* allocates nodes from the simulated heap (plain bump allocation — no
  reclamation, as is standard for persistent-LFD benchmarking);
* performs all field accesses as yielded memory operations with C++11
  release/acquire annotations (the data-race-free labelling Section 6.1
  assumes): traversal loads of link words are *acquires*, linking CASes
  are *releases*, node-initialization stores are plain;
* supports a direct-memory initial build (the pre-populated structure
  whose size the paper sweeps), which must produce exactly the layout
  the runtime operations would;
* provides a structural *null-recovery validator* over an NVM image: a
  consistent cut must always validate; the classic ARP failure — a
  link persisted before the fields of the node it publishes — must be
  reported.

Deleted-node marking uses the standard Harris pointer-tag: node
addresses are 8-byte aligned, so bit 0 of a link word marks the node
that *holds* the link as logically deleted.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Generator, Iterable, List, Optional, Set

from repro.core.thread import Op, store
from repro.memory.address import WORD_BYTES, HeapAllocator

Word = Optional[int]
OpGen = Generator[Op, object, object]

NULL = 0

#: Sentinel keys bracketing every user key.
KEY_MIN = -(1 << 62)
KEY_MAX = 1 << 62


def mark(pointer: int) -> int:
    """Tag a link word: the holder of this link is logically deleted."""
    return pointer | 1


def unmark(pointer: int) -> int:
    """Strip the deletion tag from a link word."""
    return pointer & ~1


def is_marked(pointer: Word) -> bool:
    """True if the link word carries the deletion tag."""
    return pointer is not None and bool(pointer & 1)


@dataclasses.dataclass
class RecoveryReport:
    """Result of validating an NVM image for null recovery."""

    structure: str
    ok: bool
    problems: List[str]
    reachable_nodes: int = 0
    live_keys: Optional[Set[int]] = None

    def __bool__(self) -> bool:
        return self.ok


class ImageReader:
    """Typed reads over a crash image (missing word -> None)."""

    def __init__(self, image: Dict[int, Word]) -> None:
        self._image = image

    def word(self, addr: int) -> Word:
        return self._image.get(addr)

    def present(self, addr: int) -> bool:
        return addr in self._image


class LogFreeStructure:
    """Interface every LFD workload implements.

    Runtime node allocation goes through :meth:`use_arena`-registered
    per-thread arenas when available: consecutive allocations of one
    thread share cache lines (the intra-thread locality behind BB's
    conflicts) without false sharing across threads — mirroring the
    per-thread arenas of a real malloc. The structure-level allocator
    is used for metadata and the initial build.
    """

    name = "lfd"

    def __init__(self, allocator: HeapAllocator) -> None:
        self.allocator = allocator
        self._arenas: Dict[int, HeapAllocator] = {}

    def use_arena(self, thread_id: int) -> None:
        """Route ``thread_id``'s allocations to a private arena."""
        if thread_id not in self._arenas:
            self._arenas[thread_id] = self.allocator.arena(thread_id)

    # -- runtime operations (generator coroutines) ----------------------

    def insert(self, key: int, value: int,
               tid: Optional[int] = None) -> OpGen:
        """Insert; returns True if the key was absent. ``tid`` selects
        the allocation arena for any new node."""
        raise NotImplementedError

    def delete(self, key: int) -> OpGen:
        """Delete; returns True if the key was present."""
        raise NotImplementedError

    def contains(self, key: int) -> OpGen:
        """Membership test; returns True if present."""
        raise NotImplementedError

    # -- setup -----------------------------------------------------------

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        """Materialize a pre-populated structure directly into memory."""
        raise NotImplementedError

    # -- recovery / oracles ----------------------------------------------

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        """Structural null-recovery check over a crash image."""
        raise NotImplementedError

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        """Logical key set of the structure in a (complete) memory."""
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------

    def _allocator_for(self, tid: Optional[int]) -> HeapAllocator:
        """The arena for ``tid`` (the shared allocator as fallback)."""
        if tid is None:
            return self.allocator
        return self._arenas.get(tid, self.allocator)

    def _alloc_node(self, num_words: int, tid: Optional[int] = None,
                    line_align: bool = False) -> int:
        """Allocate one node, preceded by its allocator header word.

        Layout: ``[header][field 0 .. field n-1]``. The header word at
        ``node - 8`` models malloc chunk metadata: it is written on
        allocation, and written again when a node is *freed* on
        deletion (:func:`free_header_write`). These metadata writes
        are real memory traffic in the paper's SynchroBench workloads
        (which malloc/free every node) and are load-bearing for the
        evaluation: a deleter writes into a chunk owned by the
        inserting thread's arena, whose line is often still flushing
        under BB (an epoch conflict) but merely only-written under LRP
        (persisted off the critical path).
        """
        raw = self._allocator_for(tid).alloc(num_words + 1,
                                             line_align=line_align)
        return raw + WORD_BYTES


def field(base: int, index: int) -> int:
    """Address of the ``index``-th word of a node at ``base``."""
    return base + index * WORD_BYTES


def header_addr(node: int) -> int:
    """Address of a node's allocator-header word."""
    return node - WORD_BYTES


def alloc_header_write(node: int, num_words: int) -> Op:
    """The malloc-metadata store performed when a chunk is handed out."""
    return store(header_addr(node), num_words, site="alloc-header")


def free_header_write(node: int) -> Op:
    """The malloc-metadata store performed when a chunk is freed."""
    return store(header_addr(node), 0, site="free-header")
