"""Litmus-test infrastructure: tiny multi-threaded programs over traces.

A litmus program is a list of per-thread operation lists; an
interleaving (schedule) turns it into a concrete :class:`Trace` that
the model predicates of :mod:`repro.persistency.rp_model` can judge.

The canned :func:`figure1_insert` program is the paper's running
example (Figure 1): thread 0 prepares node A1 and links it with a
release-CAS; thread 1 acquires the link and inserts B2 after it.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.consistency.events import MemOrder, MemoryEvent, Trace

Word = Optional[int]


@dataclasses.dataclass(frozen=True)
class LitmusOp:
    """One operation of a litmus program."""

    kind: str                   # "r", "w", or "cas"
    addr: int
    value: Word = None          # written value (w / cas new value)
    expected: Word = None       # cas comparison value
    order: MemOrder = MemOrder.PLAIN


def read(addr: int, order: MemOrder = MemOrder.PLAIN) -> LitmusOp:
    return LitmusOp("r", addr, order=order)


def write(addr: int, value: Word,
          order: MemOrder = MemOrder.PLAIN) -> LitmusOp:
    return LitmusOp("w", addr, value=value, order=order)


def cas(addr: int, expected: Word, value: Word,
        order: MemOrder = MemOrder.RELEASE) -> LitmusOp:
    return LitmusOp("cas", addr, value=value, expected=expected, order=order)


Program = Sequence[Sequence[LitmusOp]]


def run_interleaving(program: Program, schedule: Sequence[int],
                     init: Optional[Dict[int, Word]] = None) -> Trace:
    """Execute ``program`` under a specific thread interleaving.

    ``schedule`` lists thread ids; each entry executes that thread's
    next operation. Thread ids must be in ``[0, len(program))`` — in
    particular a *negative* id raises rather than silently aliasing a
    thread via Python's negative indexing (schedules arrive from repro
    files and explorers; a malformed one must fail loudly, not execute
    the wrong thread). The schedule must consume every operation
    exactly once. ``init`` supplies initial memory values.
    """
    num_threads = len(program)
    cursors = [0] * num_threads
    trace = Trace()
    if init:
        trace.initialize(init)
    for thread_id in schedule:
        if not 0 <= thread_id < num_threads:
            raise ValueError(
                f"schedule contains invalid thread id {thread_id} "
                f"(program has {num_threads} threads)")
        ops = program[thread_id]
        index = cursors[thread_id]
        if index >= len(ops):
            raise ValueError(f"schedule overruns thread {thread_id}")
        op = ops[index]
        cursors[thread_id] = index + 1
        if op.kind == "r":
            trace.record_read(thread_id, op.addr, op.order)
        elif op.kind == "w":
            trace.record_write(thread_id, op.addr, op.value, op.order)
        elif op.kind == "cas":
            trace.record_rmw(thread_id, op.addr, op.expected, op.value,
                             op.order)
        else:
            raise ValueError(f"unknown litmus op kind {op.kind!r}")
    for thread_id, cursor in enumerate(cursors):
        if cursor != len(program[thread_id]):
            raise ValueError(f"schedule leaves thread {thread_id} "
                             f"unfinished ({cursor}/{len(program[thread_id])})")
    return trace


def count_interleavings(program: Program) -> int:
    """Number of distinct schedules: the multinomial coefficient."""
    total = sum(len(ops) for ops in program)
    count = 1
    for ops in program:
        count *= math.comb(total, len(ops))
        total -= len(ops)
    return count


def all_interleavings(program: Program) -> Iterator[List[int]]:
    """Every *distinct* schedule of ``program``, in lexicographic order.

    Generated as multiset permutations of the thread tokens — each
    distinct schedule exactly once. (``itertools.permutations`` over
    the repeated tokens would yield each schedule ``prod(n_t!)`` times
    and force either duplicate work or a factorial-sized ``seen`` set;
    a 2x2 program has 24 permutations but only 6 schedules.)
    """
    remaining = [len(ops) for ops in program]
    total = sum(remaining)
    schedule: List[int] = []

    def emit() -> Iterator[List[int]]:
        if len(schedule) == total:
            yield list(schedule)
            return
        for tid, left in enumerate(remaining):
            if left:
                remaining[tid] -= 1
                schedule.append(tid)
                yield from emit()
                schedule.pop()
                remaining[tid] += 1

    return emit()


# ----------------------------------------------------------------------
# The paper's Figure 1 as a litmus program
# ----------------------------------------------------------------------

#: Simulated addresses for the Figure 1 example.
FIG1_ADDRS: Dict[str, int] = {
    "A1.key": 0x100, "A1.val": 0x108, "A1.next": 0x110,
    "N1.next": 0x200,
    "B2.key": 0x300, "B2.val": 0x308, "B2.next": 0x310,
}

#: Node addresses linked by the CASes.
FIG1_A1 = 0x100
FIG1_B2 = 0x300
FIG1_N2 = 0x900


def figure1_insert() -> Program:
    """Figure 1: T0 inserts node A1, then T1 inserts B2 after reading it.

    T0: W1 (A1 fields)  ;  Rel: CAS(N1.next: N2 -> A1)
    T1: Acq: read N1.next ; W4 (B2 fields) ; Rel: CAS(A1.next: N2 -> B2)
    """
    a = FIG1_ADDRS
    thread0 = [
        write(a["A1.key"], 10),
        write(a["A1.val"], 11),
        write(a["A1.next"], FIG1_N2),
        cas(a["N1.next"], FIG1_N2, FIG1_A1, MemOrder.RELEASE),
    ]
    thread1 = [
        read(a["N1.next"], MemOrder.ACQUIRE),
        write(a["B2.key"], 20),
        write(a["B2.val"], 21),
        write(a["B2.next"], FIG1_N2),
        cas(a["A1.next"], FIG1_N2, FIG1_B2, MemOrder.RELEASE),
    ]
    return [thread0, thread1]


def figure1_initial_memory() -> Dict[int, Word]:
    """Initial memory for Figure 1: N1 links to N2."""
    return {FIG1_ADDRS["N1.next"]: FIG1_N2}


def figure1_sequential_schedule() -> List[int]:
    """T0 completes, then T1 — the synchronizing interleaving."""
    program = figure1_insert()
    return [0] * len(program[0]) + [1] * len(program[1])
