"""Address arithmetic and the simulated heap allocator.

The simulated machine is byte-addressed; all workload accesses are
8-byte words. Cache-line math (line address, home tile selection) lives
here so every subsystem agrees on it.

The :class:`HeapAllocator` is a bump allocator handing out node-sized
chunks to the lock-free data structures. Consecutive allocations from
one thread land on adjacent lines — exactly the locality that causes
BB's "write to a cache line holding an older epoch" intra-thread
conflicts (Section 2.2.1), so it is load-bearing for the evaluation's
shape, not just a convenience.
"""

from __future__ import annotations

from typing import Iterator, Optional

WORD_BYTES = 8


def word_aligned(addr: int) -> bool:
    """True if ``addr`` is 8-byte aligned."""
    return addr % WORD_BYTES == 0


def line_address(addr: int, line_bytes: int) -> int:
    """The address of the cache line containing ``addr``."""
    return addr & ~(line_bytes - 1)


def line_index(addr: int, line_bytes: int) -> int:
    """Sequential index of the line containing ``addr``."""
    return addr // line_bytes


def words_in_line(line_addr: int, line_bytes: int) -> Iterator[int]:
    """All word addresses inside the line at ``line_addr``."""
    return iter(range(line_addr, line_addr + line_bytes, WORD_BYTES))


class HeapAllocator:
    """Bump allocator for the simulated persistent heap.

    Each thread may use a private arena (``HeapAllocator.arena``) so
    that parallel allocations do not false-share, mirroring a per-thread
    memory pool in a real LFD runtime.
    """

    def __init__(self, base: int = 0x1000_0000, line_bytes: int = 64,
                 capacity_bytes: Optional[int] = None) -> None:
        if base % line_bytes:
            raise ValueError("heap base must be line-aligned")
        self._base = base
        self._next = base
        self._line_bytes = line_bytes
        self._limit = None if capacity_bytes is None else base + capacity_bytes

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out so far."""
        return self._next - self._base

    def alloc(self, num_words: int, *, line_align: bool = False) -> int:
        """Allocate ``num_words`` contiguous 8-byte words.

        With ``line_align`` the chunk starts on a fresh cache line
        (used for nodes that must not false-share with a neighbour).
        """
        if num_words <= 0:
            raise ValueError("allocation must be at least one word")
        if line_align and self._next % self._line_bytes:
            self._next += self._line_bytes - self._next % self._line_bytes
        addr = self._next
        self._next += num_words * WORD_BYTES
        if self._limit is not None and self._next > self._limit:
            raise MemoryError(
                f"arena exhausted at {addr:#x} (base {self._base:#x}, "
                f"capacity {self._limit - self._base} bytes)")
        return addr

    def arena(self, arena_id: int,
              arena_bytes: int = 64 << 20) -> "HeapAllocator":
        """A disjoint per-thread sub-allocator.

        Arenas are carved out of a reserved region far above the shared
        bump pointer, indexed by ``arena_id``. Exhausting an arena
        raises MemoryError rather than silently bleeding into its
        neighbour.
        """
        if arena_id < 0:
            raise ValueError("arena_id must be non-negative")
        base = self._base + (1 << 40) + arena_id * arena_bytes
        return HeapAllocator(base=line_address(base, self._line_bytes),
                             line_bytes=self._line_bytes,
                             capacity_bytes=arena_bytes)
