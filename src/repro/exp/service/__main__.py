"""``python -m repro.exp.service`` — campaign CLI.

Subcommands::

    submit DIR      build a sweep grid and enqueue it as a campaign
    run DIR         drive the worker pool until the campaign finishes
    resume DIR      alias of run (resume *is* run: recover + continue)
    status DIR      one JSON snapshot of queue + journal progress
    aggregate DIR   the deterministic canonical result bytes
    selftest        pin the kill/resume byte-identity guarantee and
                    write BENCH_svc.json (see selftest.py)

A campaign directory is self-describing (``meta.json`` records the
shard/lease/retry parameters), so ``run``/``status``/``aggregate``
need nothing but the path. ``run`` exits 0 only when every job is
done; an interrupted run exits nonzero and a later ``run``/``resume``
of the same directory picks up exactly where it stopped — jobs
already in the results journal or cache are never executed again.

Watch a running campaign live with::

    python -m repro.exp --watch DIR/heartbeats
    python -m repro.bench.history --live DIR
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.bench.configs import SCALED_CONFIG, bench_config
from repro.exp.runner import Job
from repro.exp.service.campaign import (
    open_campaign,
    open_or_create,
)
from repro.exp.service.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
)
from repro.exp.service.worker import run_campaign
from repro.workloads.harness import WorkloadSpec

DEFAULT_WORKLOADS = ("linkedlist", "hashmap", "bstree", "skiplist",
                     "queue")
DEFAULT_MECHANISMS = ("nop", "sb", "bb", "lrp")


def grid_jobs(workloads: Sequence[str], mechanisms: Sequence[str],
              threads: Sequence[int], seeds: Sequence[int],
              size: int, ops: int) -> List[Job]:
    """The cross-product sweep grid ``submit`` enqueues."""
    config = bench_config(SCALED_CONFIG)
    return [
        Job(spec=WorkloadSpec(structure=workload,
                              num_threads=num_threads,
                              initial_size=size,
                              ops_per_thread=ops,
                              seed=seed),
            mechanism=mechanism, config=config)
        for workload in workloads
        for mechanism in mechanisms
        for num_threads in threads
        for seed in seeds
    ]


def _csv(text: str) -> List[str]:
    return [item for item in text.split(",") if item]


def _int_csv(text: str) -> List[int]:
    return [int(item) for item in _csv(text)]


def cmd_submit(args: argparse.Namespace) -> int:
    jobs = grid_jobs(_csv(args.workloads), _csv(args.mechanisms),
                     _int_csv(args.threads), _int_csv(args.seeds),
                     args.size, args.ops)
    campaign = open_or_create(
        args.dir, jobs, num_shards=args.shards,
        lease_ttl=args.lease_ttl, max_attempts=args.max_attempts)
    status = campaign.status()
    print(json.dumps({"submitted": len(jobs), **status.as_dict()},
                     indent=2, sort_keys=True))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    def _print_status(status) -> None:
        if args.quiet:
            return
        print(f"\r{status.name}: {status.done}/{status.total} done, "
              f"{status.leased} running, {status.pending} pending, "
              f"{status.failed} failed   ",
              end="", file=sys.stderr, flush=True)

    report = run_campaign(args.dir, workers=args.workers,
                          poll=args.poll, on_status=_print_status)
    if not args.quiet:
        print(file=sys.stderr)
    payload = {
        "status": report.status.as_dict(),
        "recovered_leases": report.recovered_leases,
        "elapsed_seconds": round(report.elapsed_seconds, 3),
        "workers": report.workers,
        "worker_stats": report.worker_stats,
        "complete": report.ok,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if report.ok else 1


def cmd_status(args: argparse.Namespace) -> int:
    campaign = open_campaign(args.dir)
    status = campaign.status()
    print(json.dumps(status.as_dict(), indent=2, sort_keys=True))
    return 0 if status.complete else 1


def cmd_aggregate(args: argparse.Namespace) -> int:
    campaign = open_campaign(args.dir)
    try:
        blob = campaign.aggregate()
    except RuntimeError as exc:
        print(f"aggregate: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(blob)
        print(f"aggregate: wrote {len(blob)} bytes to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(blob.decode("utf-8"))
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from repro.exp.service.selftest import run_selftest

    report = run_selftest(output=args.output, workers=args.workers,
                          verbose=not args.quiet)
    print(json.dumps(report, indent=2, sort_keys=True))
    ok = bool(report.get("ok"))
    print(f"\nservice selftest {'PASSED' if ok else 'FAILED'}: "
          f"wrote {args.output}")
    return 0 if ok else 1


def _add_queue_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=4,
                        help="pending-queue shards for work stealing "
                             "(default: %(default)s)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL, metavar="SEC",
                        help="lease expiry for unknown-liveness workers "
                             "(default: %(default)s)")
    parser.add_argument("--max-attempts", type=int,
                        default=DEFAULT_MAX_ATTEMPTS, metavar="N",
                        help="execution attempts per job before it is "
                             "marked failed (default: %(default)s)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp.service",
        description="Persistent experiment job service: crash-safe "
                    "queue, resumable sharded campaigns, shared "
                    "result cache.")
    sub = parser.add_subparsers(dest="command")

    submit = sub.add_parser(
        "submit", help="enqueue a sweep grid as a campaign")
    submit.add_argument("dir", help="campaign directory")
    submit.add_argument("--workloads",
                        default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated structures "
                             "(default: %(default)s)")
    submit.add_argument("--mechanisms",
                        default=",".join(DEFAULT_MECHANISMS),
                        help="comma-separated mechanisms "
                             "(default: %(default)s)")
    submit.add_argument("--threads", default="8",
                        help="comma-separated thread counts "
                             "(default: %(default)s)")
    submit.add_argument("--seeds", default="1",
                        help="comma-separated workload seeds "
                             "(default: %(default)s)")
    submit.add_argument("--size", type=int, default=512,
                        help="initial structure size "
                             "(default: %(default)s)")
    submit.add_argument("--ops", type=int, default=16,
                        help="operations per thread "
                             "(default: %(default)s)")
    _add_queue_params(submit)
    submit.set_defaults(func=cmd_submit)

    for name, help_text in (
            ("run", "drive workers until the campaign finishes"),
            ("resume", "recover leases and continue (alias of run)")):
        run = sub.add_parser(name, help=help_text)
        run.add_argument("dir", help="campaign directory")
        run.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker processes; 0 drains in-process "
                              "(default: %(default)s)")
        run.add_argument("--poll", type=float, default=0.1,
                         metavar="SEC",
                         help="idle/supervision poll period "
                              "(default: %(default)s)")
        run.add_argument("--quiet", action="store_true",
                         help="suppress the live progress line")
        run.set_defaults(func=cmd_run)

    status = sub.add_parser(
        "status", help="JSON snapshot of campaign progress")
    status.add_argument("dir", help="campaign directory")
    status.set_defaults(func=cmd_status)

    aggregate = sub.add_parser(
        "aggregate", help="emit the canonical deterministic results")
    aggregate.add_argument("dir", help="campaign directory")
    aggregate.add_argument("--output", default=None, metavar="FILE",
                           help="write bytes to FILE instead of stdout")
    aggregate.set_defaults(func=cmd_aggregate)

    selftest = sub.add_parser(
        "selftest",
        help="pin kill/resume byte-identity; write BENCH_svc.json")
    selftest.add_argument("--output", default="BENCH_svc.json",
                          help="benchmark JSON path "
                               "(default: %(default)s)")
    selftest.add_argument("--workers", type=int, default=2, metavar="N",
                          help="worker processes per phase "
                               "(default: %(default)s)")
    selftest.add_argument("--quiet", action="store_true",
                          help="suppress phase progress on stderr")
    selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
