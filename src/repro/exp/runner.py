"""Parallel experiment runner.

Every benchmark simulation is an independent, deterministic function of
``(WorkloadSpec, MachineConfig, mechanism)`` — the evaluation suite is
embarrassingly parallel. The runner fans :class:`Job` batches out over
a :class:`concurrent.futures.ProcessPoolExecutor`, returns results in
the submission order regardless of completion order, and consults a
content-addressed :class:`~repro.exp.cache.ResultCache` so re-running
a figure is a cache hit.

Workers return a :class:`RunSummary` — the picklable distillation of a
:class:`~repro.core.simulator.SimulationResult` (stats, makespan,
outcome counts, persist-log digest, mechanism counters) — rather than
the full result, whose machine/structure graphs are both heavy and
pointless to ship between processes. Jobs that carry ``crash_points``
additionally run the crash-recovery campaign inside the worker and
return only its counts.

Determinism: a worker process builds the whole machine from the job's
spec/config (fresh RNGs seeded from the spec), so parallel execution
yields bit-identical makespans, stats and persist logs to serial
execution. ``tests/test_exp_runner.py`` locks this in.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import MachineConfig
from repro.common.stats import RunStats
from repro.core import fastsim
from repro.core.simulator import SimulationResult, simulate
from repro.exp import heartbeat
from repro.exp.cache import (ResultCache, code_version,
                             shared_cache_dir, stable_digest)
from repro.exp.progress import NullProgress, ProgressReporter
from repro.workloads.harness import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class Job:
    """One simulation to run (plus an optional crash campaign)."""

    spec: WorkloadSpec
    mechanism: str
    config: MachineConfig
    # When set, the worker also crash-tests the finished run at this
    # many persist-log prefixes (the recovery-matrix experiment).
    crash_points: Optional[int] = None
    crash_seed: int = 0
    # Observability (repro.obs): attach an Observer inside the worker
    # and ship its metrics (and, with collect_trace, the Chrome trace
    # events) back in ``RunSummary.obs``. Never affects timing.
    collect_obs: bool = False
    collect_trace: bool = False
    # Cycle width of the obs timeline windows; None leaves time-series
    # sampling off (setting it implies obs collection).
    timeline_interval: Optional[int] = None
    # Persist provenance (repro.obs.provenance): causal chains per
    # persist/stall, shipped back in ``RunSummary.obs["provenance"]``
    # (implies obs collection; bit-identical like the rest).
    collect_provenance: bool = False
    # Request spans (repro.obs.spans): record per-request boundary
    # clocks; for KVServiceSpec jobs the worker additionally computes
    # the SLO payload (repro.obs.slo.service_report) into
    # ``RunSummary.obs["slo"]``, reusing ``crash_points``/``crash_seed``
    # for its RTO metering. Bit-identical and batch-engine-compatible.
    collect_spans: bool = False
    # Schedule perturbation (repro.fuzz): ((decision_index, rank), ...)
    # priority nudges installed on the scheduler before the run. None
    # keeps the scheduler's optimized heap path.
    schedule_nudges: Optional[Tuple[Tuple[int, int], ...]] = None
    # Fuzzing leg (repro.fuzz.leg.FuzzLegSpec): when set, the worker
    # additionally harvests a coverage map (implies provenance
    # collection) and crash-tests coverage-weighted persist-log
    # prefixes, returning both in ``RunSummary.fuzz``.
    fuzz: Optional[object] = None

    def key(self) -> str:
        """Content-addressed cache key (includes the code version)."""
        return stable_digest({
            "job": self,
            "code": code_version(),
        })

    def label(self) -> str:
        return (f"{self.spec.structure}/{self.mechanism}"
                f"/t{self.spec.num_threads}")


@dataclasses.dataclass
class RunSummary:
    """The picklable summary of one simulation run.

    Carries everything the figure pipeline reads off a
    :class:`SimulationResult`; the heavyweight machine state stays in
    the worker process.
    """

    spec: WorkloadSpec
    mechanism: str
    config: MachineConfig
    makespan: int
    stats: RunStats
    #: ``"<op>:ok" / "<op>:fail"`` -> count, over all workers' outcomes.
    outcome_counts: Dict[str, int]
    persist_count: int
    #: Digest of the ordered persist log — serial/parallel equivalence
    #: checks compare durability *content*, not just the makespan.
    persist_log_digest: str
    #: Mechanism-specific counters (``stats_*`` attributes, e.g. LRP's
    #: ``ret_watermark_drains`` for the RET ablation).
    mechanism_counters: Dict[str, int]
    crash_attempts: Optional[int] = None
    crash_failures: Optional[int] = None
    #: Serialized :class:`~repro.obs.Observer` export (metrics dict,
    #: plus ``trace_events`` when the job asked for a trace). ``None``
    #: unless the job was run with ``collect_obs``.
    obs: Optional[Dict[str, object]] = None
    #: Fuzzing-leg payload (coverage list, crash outcomes, executed
    #: ops); ``None`` unless the job carried a ``fuzz`` spec.
    fuzz: Optional[Dict[str, object]] = None
    #: Why the batch engine fell back to the reference loop (a
    #: :class:`repro.core.fastsim.Refusal` value string, e.g.
    #: ``"observer-trace"``) — None when the fast path ran. Printable
    #: live with ``REPRO_FASTSIM_DEBUG=1``.
    fastsim_fallback: Optional[str] = None


def summarize(result: SimulationResult) -> RunSummary:
    """Distil a finished simulation into its picklable summary."""
    outcome_counts: Dict[str, int] = collections.Counter()
    for worker_results in result.outcomes:
        for op, _key, outcome in worker_results:
            ok = outcome is not None and outcome is not False
            outcome_counts[f"{op}:{'ok' if ok else 'fail'}"] += 1

    hasher = hashlib.sha256()
    for record in result.nvm.persist_log():
        hasher.update(repr((record.line_addr, record.words,
                            record.complete_time)).encode("ascii"))

    mechanism_counters = {
        name[len("stats_"):]: value
        for name, value in vars(result.machine.mechanism).items()
        if name.startswith("stats_") and isinstance(value, int)
    }
    return RunSummary(
        spec=result.spec,
        mechanism=result.mechanism,
        config=result.config,
        makespan=result.makespan,
        stats=result.stats,
        outcome_counts=dict(outcome_counts),
        persist_count=result.nvm.persist_count,
        persist_log_digest=hasher.hexdigest(),
        mechanism_counters=mechanism_counters,
        fastsim_fallback=result.fastsim_fallback,
    )


def _telemetry_snapshot(observer) -> Optional[Dict[str, int]]:
    """A tiny live-counter snapshot for the heartbeat file."""
    if observer is None:
        return None
    counters = observer.metrics.counters
    snapshot = {
        "persist.lines": counters.get("persist.lines", 0),
        "stall.cycles": sum(value for name, value in counters.items()
                            if name.startswith("stall.")),
    }
    if observer.spans is not None:
        snapshot["kv.requests"] = observer.spans.request_count()
    return snapshot


def execute_job(job: Job) -> RunSummary:
    """Run one job to completion (the worker-process entry point)."""
    observer = None
    if (job.collect_obs or job.collect_trace or job.timeline_interval
            or job.collect_provenance or job.collect_spans
            or job.fuzz is not None):
        from repro.obs import Observer

        observer = Observer(trace=job.collect_trace,
                            timeline_interval=job.timeline_interval,
                            provenance=(job.collect_provenance
                                        or job.fuzz is not None),
                            spans=job.collect_spans)
    nudges = (dict(job.schedule_nudges)
              if job.schedule_nudges is not None else None)
    heartbeat_writer = heartbeat.job_writer(job.label())
    if heartbeat_writer is not None:
        heartbeat_writer.update("setup")

        def _on_progress(execs: int, clock: int) -> None:
            heartbeat_writer.update(
                "running", execs=execs, quantum_clock=clock,
                telemetry=_telemetry_snapshot(observer))

        fastsim.PROGRESS_HOOK = _on_progress
    try:
        result = simulate(job.spec, job.mechanism, job.config,
                          observer=observer, schedule_nudges=nudges)
    except BaseException as exc:
        if heartbeat_writer is not None:
            heartbeat_writer.update("failed", error=repr(exc))
        raise
    finally:
        if heartbeat_writer is not None:
            fastsim.PROGRESS_HOOK = None
    summary = summarize(result)
    if observer is not None:
        summary.obs = observer.export()
    if job.fuzz is not None:
        from repro.fuzz.leg import run_fuzz_leg

        summary.fuzz = run_fuzz_leg(result, summary.obs, job.fuzz)
        # The coverage map also rides in the obs export proper, so
        # anything that consumes RunSummary.obs (cache, history,
        # merged sweeps) sees it without knowing about the fuzzer.
        summary.obs["coverage"] = summary.fuzz["coverage"]
    if job.collect_spans and observer is not None and observer.spans:
        from repro.obs import slo
        from repro.workloads.kvservice import KVServiceSpec

        if isinstance(job.spec, KVServiceSpec):
            summary.obs["slo"] = slo.service_report(
                result, observer.spans,
                num_crash_points=job.crash_points,
                crash_seed=job.crash_seed)
    if job.crash_points is not None:
        from repro.core.recovery import crash_test

        campaign = crash_test(result, num_points=job.crash_points,
                              seed=job.crash_seed)
        summary.crash_attempts = campaign.attempts
        summary.crash_failures = len(campaign.failures)
    if heartbeat_writer is not None:
        heartbeat_writer.update(
            "done", execs=result.executed_ops, makespan=result.makespan,
            telemetry=_telemetry_snapshot(observer))
    return summary


class ExperimentRunner:
    """Fans jobs out across processes, with optional result caching.

    ``jobs=1`` (the default) runs everything in-process — bit-identical
    to the pre-runner serial path and free of pool startup cost, which
    on small batches would dominate. ``jobs=N`` uses a process pool of
    N workers; results always come back in submission order.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[NullProgress] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress or NullProgress()
        self.cache_hits = 0
        self.cache_misses = 0

    def run(self, jobs: Sequence[Job], label: str = "") -> List[RunSummary]:
        """Execute ``jobs``; results are in the same order as ``jobs``."""
        jobs = list(jobs)
        results: List[Optional[RunSummary]] = [None] * len(jobs)
        self.progress.start(len(jobs), label)

        pending: List[int] = []
        keys: Dict[int, str] = {}
        for index, job in enumerate(jobs):
            if self.cache is not None:
                key = job.key()
                keys[index] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[index] = hit
                    self.cache_hits += 1
                    # A cache hit finishes the job without a worker —
                    # flush a terminal heartbeat so a watcher never
                    # shows it as pending/running (e.g. stale files
                    # left by an interrupted earlier sweep).
                    writer = heartbeat.job_writer(job.label())
                    if writer is not None:
                        writer.update("done", cached=True,
                                      makespan=hit.makespan)
                    self.progress.job_done(job.label(), cached=True)
                    continue
                self.cache_misses += 1
            pending.append(index)

        if self.jobs == 1 or len(pending) <= 1:
            for index in pending:
                results[index] = execute_job(jobs[index])
                self._store(keys.get(index), results[index])
                self.progress.job_done(jobs[index].label(), cached=False)
        else:
            self._run_pool(jobs, pending, keys, results)

        self.progress.finish()
        if self.cache is not None:
            # Feed the `python -m repro.exp cache stats` sidecar once
            # per batch (never per lookup).
            self.cache.flush_stats()
        assert all(summary is not None for summary in results)
        return results  # type: ignore[return-value]

    def _run_pool(self, jobs: List[Job], pending: List[int],
                  keys: Dict[int, str],
                  results: List[Optional[RunSummary]]) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_job, jobs[index]): index
                for index in pending
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    results[index] = future.result()
                    self._store(keys.get(index), results[index])
                    self.progress.job_done(jobs[index].label(),
                                           cached=False)

    def _store(self, key: Optional[str],
               summary: Optional[RunSummary]) -> None:
        if self.cache is not None and key is not None and summary is not None:
            self.cache.put(key, summary)


# ----------------------------------------------------------------------
# Process-wide default runner (configured by the bench CLI / env vars)
# ----------------------------------------------------------------------

_default_runner: Optional[ExperimentRunner] = None


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def get_default_runner() -> ExperimentRunner:
    """The runner the figure pipeline uses when none is passed in."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(jobs=default_jobs())
    return _default_runner


def set_default_runner(runner: Optional[ExperimentRunner]) -> None:
    """Install (or with None, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner


def make_runner(jobs: Optional[int] = None, use_cache: bool = False,
                verbose: bool = False) -> ExperimentRunner:
    """Convenience constructor used by the CLIs.

    A cached runner picks up ``$REPRO_CACHE_SHARED`` as its second
    tier, so CLI sweeps on one machine share results with every
    campaign pointed at the same directory.
    """
    return ExperimentRunner(
        jobs=jobs if jobs is not None else default_jobs(),
        cache=(ResultCache(shared=shared_cache_dir())
               if use_cache else None),
        progress=ProgressReporter() if verbose else None,
    )
