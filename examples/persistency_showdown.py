#!/usr/bin/env python3
"""Compare all persistency mechanisms on one workload (Figure 5 style).

Runs NOP / SB / BB / LRP on the chosen log-free data structure and
prints execution time normalized to volatile execution, plus the
critical-writeback fractions behind Figure 6.

Run:  python examples/persistency_showdown.py --workload skiplist
      python examples/persistency_showdown.py --workload queue \\
          --threads 16 --size 2048 --uncached
"""

import argparse

from repro import WorkloadSpec, simulate
from repro.bench.configs import SCALED_CONFIG, uncached
from repro.lfds import WORKLOAD_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Persistency-mechanism comparison on one LFD.")
    parser.add_argument("--workload", choices=WORKLOAD_NAMES,
                        default="hashmap")
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--size", type=int, default=8192)
    parser.add_argument("--ops", type=int, default=32)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--uncached", action="store_true",
                        help="disable the NVM-side DRAM cache (Fig. 7)")
    args = parser.parse_args()

    config = uncached(SCALED_CONFIG) if args.uncached else SCALED_CONFIG
    spec = WorkloadSpec(structure=args.workload,
                        num_threads=args.threads,
                        initial_size=args.size,
                        ops_per_thread=args.ops, seed=args.seed)

    mode = "uncached" if args.uncached else "cached"
    print(f"{args.workload}, {args.threads} threads, "
          f"{args.size} initial elements, NVM {mode} mode\n")
    print(f"{'mechanism':<10} {'cycles':>12} {'vs NOP':>8} "
          f"{'persists':>9} {'critical WB':>12} {'stall cyc':>10}")

    baseline = None
    breakdowns = {}
    for mechanism in ("nop", "sb", "bb", "lrp"):
        result = simulate(spec, mechanism=mechanism, config=config)
        result.verify_final_state()
        stats = result.stats
        if baseline is None:
            baseline = result.makespan
        print(f"{mechanism:<10} {result.makespan:>12,} "
              f"{result.makespan / baseline:>8.2f} "
              f"{stats.total_persists:>9} "
              f"{stats.critical_writeback_fraction:>11.0%} "
              f"{stats.persist_stall_cycles:>10,}")
        breakdowns[mechanism] = stats.stall_breakdown()

    print("\nstall cycles by cause:")
    for mechanism, breakdown in breakdowns.items():
        if breakdown:
            causes = ", ".join(f"{k}={v:,}" for k, v in
                               sorted(breakdown.items(),
                                      key=lambda kv: -kv[1]))
            print(f"  {mechanism:<5} {causes}")


if __name__ == "__main__":
    main()
