"""Tests for post-crash recover-and-continue (operational null recovery)."""

import pytest

from repro.common.params import MachineConfig
from repro.core.replay import (
    RecoveryReplayError,
    continuation_sweep,
    recover_and_continue,
)
from repro.core.simulator import simulate
from repro.lfds import WORKLOAD_NAMES
from repro.workloads.harness import WorkloadSpec

CFG = MachineConfig(num_cores=8, l1_size_bytes=8 * 1024)


def _crashed_run(workload, mechanism="lrp", seed=3):
    spec = WorkloadSpec(structure=workload, num_threads=6,
                        initial_size=96, ops_per_thread=16, seed=seed)
    return simulate(spec, mechanism=mechanism, config=CFG)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
class TestRecoverAndContinue:
    def test_continue_from_full_log(self, workload):
        result = _crashed_run(workload)
        log_len = len(result.nvm.persist_log())
        cont = recover_and_continue(result, log_len, config=CFG)
        assert cont.ok
        assert cont.results  # new operations actually ran

    def test_continue_from_mid_crash(self, workload):
        result = _crashed_run(workload)
        log_len = len(result.nvm.persist_log())
        cont = recover_and_continue(result, log_len // 2, config=CFG)
        assert cont.ok

    def test_continue_from_zero_prefix(self, workload):
        """Crash before anything persisted: recover the initial build."""
        result = _crashed_run(workload)
        cont = recover_and_continue(result, 0, config=CFG)
        assert cont.ok


class TestSweep:
    def test_sweep_hashmap(self):
        result = _crashed_run("hashmap")
        outcomes = continuation_sweep(result, num_points=5, config=CFG)
        assert len(outcomes) >= 2
        assert all(o.ok for o in outcomes)

    def test_unrecoverable_image_rejected(self):
        """Continuation must refuse a non-consistent crash image."""
        result = _crashed_run("hashmap", mechanism="nop")
        from repro.core.recovery import exhaustive_crash_test

        campaign = exhaustive_crash_test(result)
        if not campaign.failures:
            pytest.skip("this NOP run happened to stay consistent")
        bad_prefix = campaign.failures[0].prefix_len
        with pytest.raises(RecoveryReplayError):
            recover_and_continue(result, bad_prefix, config=CFG)

    def test_recovered_keys_subset_of_touched(self):
        result = _crashed_run("skiplist")
        log_len = len(result.nvm.persist_log())
        cont = recover_and_continue(result, log_len // 3, config=CFG)
        key_range = result.spec.effective_key_range
        assert all(0 <= k < key_range for k in cont.recovered_keys)
