"""Single-cell profiling and perf-regression harness.

``python -m repro.bench.profile`` runs ONE figure cell — a (workload,
mechanism, scale) triple — cold, straight through :func:`simulate`
(no runner, no result cache), and reports wall time, simulated
makespan, ops/sec and a naive projection of the full 20-cell Figure 5
sweep at that scale. Optionally it repeats the run under
:mod:`cProfile` and prints the top-N functions, which is how the
batch-engine optimization campaign measured itself (captured
before/after listings live in ``examples/``).

Two jobs beyond interactive profiling:

* **Sizing paper-scale sweeps** — run one cell at ``--scale paper``
  and read the projected sweep time before committing a machine to
  the overnight run.
* **CI perf smoke** — ``--check-against`` compares the cold wall time
  of this run against a committed baseline JSON
  (``benchmarks/baselines/BENCH_profile.json``) and exits non-zero on
  a >``--tolerance`` slowdown or *any* makespan change (makespans are
  deterministic; wall times are not, hence the generous default
  tolerance for shared CI machines). Baselines carry the engine they
  were recorded on, so the wall gate is applied per engine — a
  fast-engine run never races a reference-engine baseline.

``--obs`` times a second, identical cell with the metrics+timeline
Observer attached and reports the telemetry overhead (and that the
makespan did not move), for either engine.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time
from typing import Dict, Optional, Sequence

from repro.bench.configs import (
    SCALED_CONFIG,
    SCALES,
    bench_config,
    figure_spec,
)
from repro.core.simulator import clear_setup_cache, simulate
from repro.lfds import WORKLOAD_NAMES
from repro.persistency import MECHANISMS

#: Cells in a full Figure 5 sweep: 5 workloads x (nop + sb/bb/lrp).
FIG5_CELLS = 20

#: Timeline window width (cycles) for the ``--obs`` telemetry pass —
#: the configuration the batch engine accepts without falling back.
OBS_TIMELINE_INTERVAL = 1000


def run_cell(workload: str, mechanism: str, *, scale: str = "quick",
             num_threads: int = 32, seed: int = 1,
             profiler: Optional[cProfile.Profile] = None,
             obs: bool = False) -> Dict[str, object]:
    """One cold figure cell; returns the measurement record.

    Cold means: the setup-prototype cache is dropped first, so the
    measured time includes building and populating the structure —
    the same work a fresh ``--no-cache`` figures run pays per cell.
    ``obs=True`` attaches a metrics+timeline Observer — the telemetry
    configuration the fast engine accepts — so the same harness prices
    the instrumented run.
    """
    spec = figure_spec(workload, num_threads=num_threads, scale=scale,
                       seed=seed)
    config = bench_config(SCALED_CONFIG)
    observer = None
    if obs:
        from repro.obs import Observer
        observer = Observer(timeline_interval=OBS_TIMELINE_INTERVAL)
    clear_setup_cache()
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    result = simulate(spec, mechanism, config, observer=observer)
    if profiler is not None:
        profiler.disable()
    elapsed = time.perf_counter() - start
    return {
        "workload": workload,
        "mechanism": mechanism,
        "scale": scale,
        "num_threads": num_threads,
        "seed": seed,
        "seconds": round(elapsed, 3),
        "makespan": result.makespan,
        "executed_ops": result.executed_ops,
        "ops_per_second": round(result.executed_ops / elapsed, 1)
        if elapsed else None,
        # Naive per-cell extrapolation: every cell priced like this
        # one. Real sweeps vary per cell (queue under SB is the slow
        # corner), so read this as an order-of-magnitude budget.
        "projected_fig5_sweep_seconds": round(elapsed * FIG5_CELLS, 1),
    }


def check_against(record: Dict[str, object], baseline_path: str,
                  tolerance: float) -> Sequence[str]:
    """Regression check vs a committed baseline; returns failures."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for key in ("workload", "mechanism", "scale", "num_threads", "seed",
                "engine"):
        if baseline.get(key) != record[key]:
            failures.append(
                f"baseline is for {key}={baseline.get(key)!r}, this run "
                f"is {key}={record[key]!r} — not comparable")
    if failures:
        return failures
    if record["makespan"] != baseline["makespan"]:
        failures.append(
            f"makespan changed: {baseline['makespan']} -> "
            f"{record['makespan']} (deterministic metric; any change "
            "means the simulation itself changed)")
    limit = baseline["seconds"] * (1.0 + tolerance)
    if record["seconds"] > limit:
        failures.append(
            f"cold cell time regressed: {record['seconds']}s vs "
            f"baseline {baseline['seconds']}s "
            f"(limit {limit:.3f}s at +{tolerance * 100:.0f}%)")
    return failures


def _print_profile(profiler: cProfile.Profile, top: int) -> None:
    for sort in ("cumulative", "tottime"):
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.strip_dirs().sort_stats(sort).print_stats(top)
        print(f"--- top {top} by {sort} ---")
        print(buf.getvalue())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile one figure cell cold; optionally gate "
                    "against a committed perf baseline.")
    parser.add_argument("--workload", default="hashmap",
                        choices=WORKLOAD_NAMES)
    parser.add_argument("--mechanism", default="lrp",
                        choices=sorted(MECHANISMS))
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--threads", type=int, default=32)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--engine", choices=("fast", "reference"),
                        default="fast",
                        help="'reference' forces REPRO_FASTSIM=0 for "
                             "before/after comparisons")
    parser.add_argument("--obs", action="store_true",
                        help="also time an identical cell with the "
                             "metrics+timeline Observer attached and "
                             "report the telemetry overhead")
    parser.add_argument("--top", type=int, default=20, metavar="N",
                        help="functions to show from a second, "
                             "cProfile'd run (0 = skip the profiled "
                             "pass; the timed run is never profiled)")
    parser.add_argument("--no-numpy", action="store_true",
                        help="force the pure-array table fallback")
    parser.add_argument("--json-out", default=None, metavar="FILE")
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="baseline JSON (same schema as "
                             "--json-out); exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown vs the "
                             "baseline (default 0.5 = +50%%)")
    args = parser.parse_args(argv)

    os.environ["REPRO_FASTSIM"] = "0" if args.engine == "reference" else "1"
    if args.no_numpy:
        os.environ["REPRO_NO_NUMPY"] = "1"

    record = run_cell(args.workload, args.mechanism, scale=args.scale,
                      num_threads=args.threads, seed=args.seed)
    record["engine"] = args.engine

    print(f"{args.workload}/{args.mechanism} @ {args.scale} "
          f"({args.threads} threads, seed {args.seed}, "
          f"{args.engine} engine)")
    print(f"  cold cell time : {record['seconds']} s")
    print(f"  makespan       : {record['makespan']} cycles")
    print(f"  executed ops   : {record['executed_ops']} "
          f"({record['ops_per_second']} ops/s)")
    print(f"  projected full Figure 5 sweep at this scale: "
          f"~{record['projected_fig5_sweep_seconds']} s "
          f"({FIG5_CELLS} cells, naive per-cell extrapolation)")

    if args.obs:
        obs_record = run_cell(args.workload, args.mechanism,
                              scale=args.scale, num_threads=args.threads,
                              seed=args.seed, obs=True)
        plain_seconds = record["seconds"]
        record["obs_seconds"] = obs_record["seconds"]
        record["obs_overhead_pct"] = (
            round((obs_record["seconds"] / plain_seconds - 1.0) * 100, 1)
            if plain_seconds else None)
        record["obs_makespan_identical"] = (
            obs_record["makespan"] == record["makespan"])
        print(f"  with telemetry  : {record['obs_seconds']} s "
              f"(+{record['obs_overhead_pct']}%, makespan "
              f"{'identical' if record['obs_makespan_identical'] else 'CHANGED'})")

    if args.top > 0:
        profiler = cProfile.Profile()
        run_cell(args.workload, args.mechanism, scale=args.scale,
                 num_threads=args.threads, seed=args.seed,
                 profiler=profiler)
        print()
        _print_profile(profiler, args.top)

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if args.check_against:
        failures = check_against(record, args.check_against,
                                 args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"perf check OK vs {args.check_against} "
              f"(+{args.tolerance * 100:.0f}% tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
