"""Tests for the KV-service workload and its request spans.

Load-bearing guarantees:

* the client generators are deterministic functions of the spec (keys,
  op mix, value sizes, arrivals), with YCSB-style zipfian skew and
  bursty arrival windows actually present in the draws;
* the harness correctness oracle applies unchanged — the final
  structure state matches :func:`expected_final_keys` replayed over
  the recorded outcomes;
* span tracking is *free* in the semantics: makespans, persist-log
  digests and outcomes are bit-identical with spans on or off, the
  batch engine stays engaged, and the recorded (boundary, event-mark)
  lanes are bit-identical between the batch engine and the reference
  heap loop.
"""

import dataclasses

import pytest

from repro.common.params import MachineConfig
from repro.core.simulator import clear_setup_cache, simulate
from repro.obs import Observer
from repro.workloads.kvservice import (
    KVServiceSpec,
    arrival_times,
    key_permutation,
    value_cycles,
    zipf_cdf,
)

MECHANISMS = ("nop", "sb", "bb", "lrp")


def tiny_spec(**overrides):
    base = dict(structure="hashmap", num_threads=4, initial_size=64,
                requests_per_thread=12, seed=1)
    base.update(overrides)
    return KVServiceSpec(**base)


def tiny_config():
    return MachineConfig(num_cores=4)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

def test_queue_rejected():
    with pytest.raises(ValueError, match="keyed structure"):
        tiny_spec(structure="queue")


@pytest.mark.parametrize("field,value", [
    ("num_threads", 0),
    ("requests_per_thread", 0),
    ("read_ratio", 1.5),
    ("zipf_theta", -0.1),
    ("value_bytes_min", 0),
    ("mean_interarrival", 0),
    ("burst_factor", 0.5),
    ("burst_len", 100),
])
def test_invalid_spec_fields_rejected(field, value):
    with pytest.raises(ValueError):
        tiny_spec(**{field: value})


def test_effective_key_range_defaults_to_twice_size():
    assert tiny_spec(initial_size=64).effective_key_range == 128
    assert tiny_spec(key_range=1000).effective_key_range == 1000
    assert tiny_spec(initial_size=0).effective_key_range == 2


def test_total_requests():
    assert tiny_spec().total_requests == 48


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------

def test_zipf_cdf_monotone_and_skewed():
    cdf = zipf_cdf(1000, 0.99)
    assert len(cdf) == 1000
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == 1.0
    # YCSB-style skew: the top 10% of ranks draw well over half the
    # probability mass (uniform would give them exactly 10%).
    assert cdf[99] > 0.5


def test_zipf_theta_zero_is_uniform():
    cdf = zipf_cdf(100, 0.0)
    assert cdf[9] == pytest.approx(0.1)


def test_key_permutation_is_a_permutation_and_seeded():
    perm = key_permutation(128, 1)
    assert sorted(perm) == list(range(128))
    assert perm == key_permutation(128, 1)
    assert perm != key_permutation(128, 2)


def test_arrival_times_deterministic_and_per_thread():
    spec = tiny_spec()
    assert arrival_times(spec, 0) == arrival_times(spec, 0)
    assert arrival_times(spec, 0) != arrival_times(spec, 1)
    arrivals = arrival_times(spec, 0)
    assert len(arrivals) == spec.requests_per_thread
    assert all(a <= b for a, b in zip(arrivals, arrivals[1:]))


def test_arrival_bursts_are_faster():
    # With burst_len=16 of every burst_period=64 requests arriving
    # burst_factor x faster, the mean in-burst gap must be well below
    # the out-of-burst mean.
    spec = tiny_spec(requests_per_thread=256, mean_interarrival=400,
                     burst_factor=8.0, burst_period=64, burst_len=16)
    arrivals = arrival_times(spec, 0)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    in_burst, out_burst = [], []
    for index, gap in enumerate(gaps, start=1):
        (in_burst if index % spec.burst_period < spec.burst_len
         else out_burst).append(gap)
    mean_in = sum(in_burst) / len(in_burst)
    mean_out = sum(out_burst) / len(out_burst)
    assert mean_in * 3 < mean_out


def test_value_cycles_rounds_up_to_lines():
    assert value_cycles(1) == 1
    assert value_cycles(64) == 1
    assert value_cycles(65) == 2
    assert value_cycles(4096) == 64


# ----------------------------------------------------------------------
# End-to-end correctness: the harness oracle still applies
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_final_state_matches_outcomes(mechanism):
    result = simulate(tiny_spec(), mechanism, tiny_config())
    result.verify_final_state()  # raises on mismatch


def test_runs_are_deterministic():
    spec, config = tiny_spec(), tiny_config()
    first = simulate(spec, "lrp", config)
    second = simulate(spec, "lrp", config)
    assert first.makespan == second.makespan
    assert first.outcomes == second.outcomes


# ----------------------------------------------------------------------
# Span tracking: free, bit-identical, engine-invariant
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_spans_do_not_change_the_run(mechanism):
    spec, config = tiny_spec(), tiny_config()
    plain = simulate(spec, mechanism, config)
    observer = Observer(spans=True)
    observed = simulate(spec, mechanism, config, observer=observer)
    assert observed.makespan == plain.makespan
    assert observed.outcomes == plain.outcomes
    assert [r.complete_time for r in observed.nvm.persist_log()] == \
        [r.complete_time for r in plain.nvm.persist_log()]
    # One boundary (and one event mark) per request, per thread.
    assert observer.spans.request_count() == spec.total_requests
    for lane, marks in zip(observer.spans.boundaries,
                           observer.spans.event_marks):
        assert len(lane) == spec.requests_per_thread
        assert len(marks) == spec.requests_per_thread
        assert all(a < b for a, b in zip(lane, lane[1:]))
        assert all(a < b for a, b in zip(marks, marks[1:]))


def test_spans_keep_the_batch_engine_engaged(monkeypatch):
    monkeypatch.setenv("REPRO_FASTSIM", "1")
    clear_setup_cache()
    observer = Observer(spans=True)
    result = simulate(tiny_spec(), "lrp", tiny_config(),
                      observer=observer)
    assert result.fastsim_fallback is None
    assert observer.spans.request_count() == tiny_spec().total_requests


@pytest.mark.parametrize("mechanism", ("bb", "lrp"))
def test_span_lanes_identical_across_engines(mechanism, monkeypatch):
    """The batch engine records the exact lanes the heap loop does."""
    spec, config = tiny_spec(), tiny_config()
    lanes = {}
    for fast in (False, True):
        monkeypatch.setenv("REPRO_FASTSIM", "1" if fast else "0")
        clear_setup_cache()
        observer = Observer(spans=True)
        result = simulate(spec, mechanism, config, observer=observer)
        assert (result.fastsim_fallback is None) == fast
        lanes[fast] = (result.makespan, observer.spans.to_dict())
    clear_setup_cache()
    assert lanes[False] == lanes[True]


def test_span_tracker_roundtrips_through_dict():
    observer = Observer(spans=True)
    simulate(tiny_spec(), "bb", tiny_config(), observer=observer)
    from repro.obs.spans import SpanTracker

    data = observer.spans.to_dict()
    restored = SpanTracker.from_dict(data)
    assert restored.to_dict() == data


def test_provenance_tagging_keeps_boundary_identity():
    """Site tagging must not break the identity compare on boundaries."""
    observer = Observer(spans=True, provenance=True)
    spec = tiny_spec()
    simulate(spec, "lrp", tiny_config(), observer=observer)
    assert observer.spans.request_count() == spec.total_requests
