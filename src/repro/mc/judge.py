"""Crash-state judging of one litmus execution, per mechanism.

The model-level question: can the mechanism leave NVM in a state that
is *not* a consistent cut of the execution?

* A **crash state** is a set ``S`` of write events that is downward
  closed under the mechanism's *guarantee* order — the persist-order
  obligations the mechanism enforces. Every mechanism at least keeps
  same-word coherence order (a word's store buffer / cache line
  coalesces in order); RP-enforcing mechanisms (``enforces_rp``) add
  every hb-ordered write pair of :class:`HappensBefore`'s chosen mode,
  ARP adds exactly the :func:`repro.persistency.rp_model.arp_pairs`
  obligations, NOP adds nothing.
* ``S`` is **consistent** iff it is also downward closed under the
  *model*'s write pairs — equivalently, iff ``rp_allows`` accepts its
  execution-order linearization.

A mechanism is *clean* on the trace iff every crash state is
consistent. Instead of enumerating the (exponentially many) ideals,
the verdict uses the principal-ideal argument:

    some guarantee-closed ``S`` misses an hb-predecessor of a member
        iff
    some write ``y`` has an hb-predecessor outside its guarantee
    down-closure ``down_g(y)``

(⇐) ``down_g(y) ∪ {y}`` is itself guarantee-closed and misses the
predecessor; (⇒) any guarantee-closed ``S`` containing ``y`` contains
``down_g(y)``, so a missing predecessor lies outside ``down_g(y)``.
The witness crash state is therefore always the principal ideal of the
first offending write — the most adversarial state the mechanism
permits, which is exactly the paper's Figure 1(e) image when judging
ARP on the insert program. :func:`enumerate_crash_states` keeps the
exhaustive enumeration for the tests that pin the equivalence.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.params import MachineConfig
from repro.consistency.events import MemoryEvent, Trace
from repro.consistency.happens_before import HappensBefore
from repro.memory.nvm import NVMController
from repro.persistency import mechanism_by_name
from repro.persistency.rp_model import arp_pairs


@dataclasses.dataclass(frozen=True)
class CrashWitness:
    """A reachable, inconsistent crash state of one execution."""

    #: Event ids of the persisted writes, in execution order (the
    #: linearization ``rp_allows`` rejects).
    persist_sequence: Tuple[int, ...]
    #: The durable write whose hb-predecessor is missing.
    visible_event: int
    #: The missing hb-predecessor.
    missing_event: int


@dataclasses.dataclass(frozen=True)
class TraceJudgement:
    """Verdict of one mechanism over one execution's crash states."""

    mechanism: str
    hb_mode: str
    num_writes: int
    witness: Optional[CrashWitness]

    @property
    def clean(self) -> bool:
        return self.witness is None


def _bits(mask: int) -> Iterator[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _coherence_pred(writes: Sequence[MemoryEvent]) -> List[int]:
    """Per write index: bit of the previous write to the same word."""
    direct = [0] * len(writes)
    last: Dict[int, int] = {}
    for index, event in enumerate(writes):
        if event.addr in last:
            direct[index] |= 1 << last[event.addr]
        last[event.addr] = index
    return direct


def _model_pred_masks(writes: Sequence[MemoryEvent],
                      hb: HappensBefore) -> List[int]:
    """Per write index: bitset of its hb-earlier writes (transitive)."""
    masks = []
    for index, event in enumerate(writes):
        preds = hb.closure[event.event_id]
        mask = 0
        for earlier in range(index):
            if (preds >> writes[earlier].event_id) & 1:
                mask |= 1 << earlier
        masks.append(mask)
    return masks


def _close(direct: List[int]) -> List[int]:
    """Transitive closure of per-index direct-predecessor bitsets.

    Write indices ascend in event order and every edge points
    backwards, so one forward sweep suffices.
    """
    closure = [0] * len(direct)
    for index, mask in enumerate(direct):
        acc = 0
        for pred in _bits(mask):
            acc |= closure[pred] | (1 << pred)
        closure[index] = acc
    return closure


def _guarantee_closure(trace: Trace, mechanism: str,
                       writes: Sequence[MemoryEvent],
                       model_preds: List[int]) -> List[int]:
    """Per write index: writes the mechanism forces to persist first."""
    direct = _coherence_pred(writes)
    name = mechanism.lower()
    if mechanism_by_name(name).enforces_rp:
        for index, mask in enumerate(model_preds):
            direct[index] |= mask
    elif name == "arp":
        position = {event.event_id: index
                    for index, event in enumerate(writes)}
        for earlier, later in arp_pairs(trace):
            direct[position[later]] |= 1 << position[earlier]
    # NOP (and anything else without RP claims): coherence order only.
    return _close(direct)


def judge_trace(trace: Trace, mechanisms: Sequence[str],
                hb_mode: str = "rp",
                hb: Optional[HappensBefore] = None
                ) -> Dict[str, TraceJudgement]:
    """Judge every mechanism's crash states over one execution."""
    hb = hb or HappensBefore.from_trace(trace, mode=hb_mode)
    writes = [e for e in trace.events if e.is_write_effect]
    model_preds = _model_pred_masks(writes, hb)
    judgements: Dict[str, TraceJudgement] = {}
    for mechanism in mechanisms:
        guarantee = _guarantee_closure(trace, mechanism, writes,
                                       model_preds)
        witness = None
        for index, required in enumerate(model_preds):
            missing = required & ~guarantee[index]
            if missing:
                state = guarantee[index] | (1 << index)
                witness = CrashWitness(
                    persist_sequence=tuple(
                        writes[i].event_id for i in _bits(state)),
                    visible_event=writes[index].event_id,
                    missing_event=writes[
                        next(_bits(missing))].event_id)
                break
        judgements[mechanism] = TraceJudgement(
            mechanism=mechanism, hb_mode=hb.mode,
            num_writes=len(writes), witness=witness)
    return judgements


def enumerate_crash_states(trace: Trace, mechanism: str,
                           hb_mode: str = "rp",
                           hb: Optional[HappensBefore] = None
                           ) -> Iterator[Tuple[List[int], bool]]:
    """Every guarantee-closed crash state, with its consistency bit.

    Yields ``(persist_sequence, consistent)`` pairs — the exhaustive
    ground truth the principal-ideal verdict of :func:`judge_trace` is
    pinned against (test scope only: cost is ``O(2^writes)``).
    """
    hb = hb or HappensBefore.from_trace(trace, mode=hb_mode)
    writes = [e for e in trace.events if e.is_write_effect]
    if len(writes) > 16:
        raise ValueError(
            f"enumerate_crash_states is exponential; {len(writes)} "
            "writes is past the sanity bound of 16")
    model_preds = _model_pred_masks(writes, hb)
    guarantee = _guarantee_closure(trace, mechanism, writes, model_preds)
    for state in range(1 << len(writes)):
        closed = all(not (guarantee[i] & ~state) for i in _bits(state))
        if not closed:
            continue
        consistent = all(not (model_preds[i] & ~state)
                         for i in _bits(state))
        yield [writes[i].event_id for i in _bits(state)], consistent


def materialize_persist_log(trace: Trace, persist_sequence: Sequence[int],
                            config: Optional[MachineConfig] = None
                            ) -> NVMController:
    """Build a synthetic NVM whose log persists exactly the sequence.

    Each write event becomes one single-word persist, issued far
    enough apart (one full persist latency per step) that completion
    order equals issue order on every channel — so
    ``nvm.persist_log()`` reproduces ``persist_sequence`` verbatim and
    :class:`repro.persistency.checker.RPChecker` can judge the crash
    state with its stock machinery.
    """
    config = config or MachineConfig()
    nvm = NVMController(config)
    stride = config.nvm_persist_cycles + config.nvm_occupancy_cycles
    events = trace.events
    for step, event_id in enumerate(persist_sequence):
        event = events[event_id]
        if not event.is_write_effect:
            raise ValueError(
                f"event {event_id} in persist sequence is not a write")
        nvm.issue_persist(event.addr, {event.addr: (event.value, event_id)},
                          now=step * stride)
    return nvm


def cut_violations(trace: Trace, persist_sequence: Sequence[int],
                   hb: Optional[HappensBefore] = None,
                   hb_mode: str = "rp") -> Tuple[int, List[str]]:
    """RPChecker's consistent-cut verdict on a crash state.

    Materializes the state as a synthetic persist log and runs
    ``check_cut`` over the full prefix, keeping only violations whose
    missing write is truly *absent* from the state (an "unreflected"
    complaint about a write that did persist but was overwritten by an
    hb-unordered same-word write is a read-reconstruction artifact,
    not a missing-predecessor inconsistency — event-granularity crash
    states persist whole events, never partial overwrites).

    Returns ``(count, first problem lines)``.
    """
    from repro.persistency.checker import RPChecker

    hb = hb or HappensBefore.from_trace(trace, mode=hb_mode)
    nvm = materialize_persist_log(trace, persist_sequence)
    checker = RPChecker(trace, nvm, hb=hb)
    present = set(persist_sequence)
    violations = [v for v in checker.check_cut(len(persist_sequence))
                  if v.earlier.event_id not in present]
    return len(violations), [str(v) for v in violations[:3]]
