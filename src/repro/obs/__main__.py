"""``python -m repro.obs`` — tracing, attribution, and self-test.

Subcommands:

* ``trace out.json`` — run one small simulation with full tracing and
  write a ``chrome://tracing`` / Perfetto-loadable trace-event file;
* ``report`` — run one workload under several mechanisms and print the
  critical-path attribution report (the textual explanation of the
  paper's Figures 5-8: where each mechanism's makespan goes);
* ``--selftest`` — end-to-end check on a tiny workload: obs hooks
  disabled vs. enabled yield bit-identical runs, the trace export
  round-trips through ``json`` with monotone per-track timestamps, and
  the attribution reconciles exactly with ``RunStats``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.common.params import MachineConfig, NVMMode
from repro.core.simulator import SimulationResult, simulate
from repro.obs import Observer, write_chrome_trace
from repro.obs.report import (
    attribute_run,
    render_attribution,
)
from repro.workloads.harness import WorkloadSpec

SELFTEST_MECHANISMS = ("nop", "sb", "bb", "lrp")


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(structure=args.workload,
                        num_threads=args.threads,
                        initial_size=args.size,
                        ops_per_thread=args.ops,
                        seed=args.seed)


def _config_from_args(args: argparse.Namespace) -> MachineConfig:
    mode = NVMMode.UNCACHED if args.uncached else NVMMode.CACHED
    return MachineConfig(num_cores=max(args.threads, 1), nvm_mode=mode)


def _observed_run(spec: WorkloadSpec, mechanism: str,
                  config: MachineConfig, *, trace: bool
                  ) -> Tuple[SimulationResult, Observer]:
    observer = Observer(trace=trace)
    result = simulate(spec, mechanism, config, observer=observer)
    return result, observer


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="hashmap",
                        help="LFD to run (default: %(default)s)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--size", type=int, default=256,
                        help="initial structure size")
    parser.add_argument("--ops", type=int, default=24,
                        help="operations per thread")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--uncached", action="store_true",
                        help="uncached NVM mode (Figure 7 regime)")


def cmd_trace(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = _config_from_args(args)
    result, observer = _observed_run(spec, args.mechanism, config,
                                     trace=True)
    events = observer.trace.chrome_events()
    write_chrome_trace(events, args.output)
    attribution = attribute_run(result.stats, observer.metrics.counters)
    print(f"wrote {len(events)} trace events to {args.output} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    print(f"{spec.structure}/{args.mechanism}: makespan "
          f"{result.makespan} cycles, persist stalls "
          f"{attribution.persist_stall_total} cycles")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = _config_from_args(args)
    attributions = []
    for mechanism in args.mechanisms:
        result, observer = _observed_run(spec, mechanism, config,
                                         trace=False)
        attributions.append(
            attribute_run(result.stats, observer.metrics.counters))
    print(render_attribution(
        attributions,
        title=f"Critical-path attribution: {spec.structure}, "
              f"{spec.num_threads} threads, "
              f"{spec.ops_per_thread} ops/thread "
              f"({config.nvm_mode.value} NVM)"))
    return 0


# ----------------------------------------------------------------------
# Self-test
# ----------------------------------------------------------------------

def _check_monotone(events: List[dict]) -> None:
    """Per track, data-event timestamps must be non-decreasing."""
    last: dict = {}
    for event in events:
        if event.get("ph") == "M":
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if event.get("dur", 0) < 0:
            raise AssertionError(f"negative dur in {event}")
        if track in last and ts < last[track]:
            raise AssertionError(
                f"ts regression on track {track}: {last[track]} -> {ts}")
        last[track] = ts


def run_selftest(verbose: bool = True) -> bool:
    """Tiny-workload end-to-end check of the whole obs stack."""
    from repro.exp.runner import execute_job, Job

    spec = WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=12, seed=1)
    config = MachineConfig(num_cores=4)
    ok = True
    for mechanism in SELFTEST_MECHANISMS:
        plain = simulate(spec, mechanism, config)
        observed, observer = _observed_run(spec, mechanism, config,
                                           trace=True)

        identical = (plain.makespan == observed.makespan
                     and plain.stats.summary() == observed.stats.summary())

        with tempfile.NamedTemporaryFile("w+", suffix=".json") as tmp:
            write_chrome_trace(observer.trace.chrome_events(), tmp)
            tmp.flush()
            tmp.seek(0)
            document = json.load(tmp)
        events = document["traceEvents"]
        _check_monotone(events)

        attribution = attribute_run(observed.stats,
                                    observer.metrics.counters)
        reconciles = (attribution.persist_stall_total
                      == observed.stats.persist_stall_cycles)
        critical = attribution.critical_core
        adds_up = (critical.compute + critical.coherence
                   + critical.persist_stall == critical.total
                   and critical.total == observed.makespan
                   and all(c.coherence >= 0 for c in attribution.cores))

        # The obs path must also compose with the runner/cache layer.
        summary = execute_job(Job(spec=spec, mechanism=mechanism,
                                  config=config, collect_obs=True))
        carried = (summary.obs is not None
                   and summary.obs["metrics"]["counters"]
                   == observer.metrics.counters)

        passed = identical and reconciles and adds_up and carried
        ok = ok and passed
        if verbose:
            print(f"[obs-selftest] {mechanism:4s}  "
                  f"identical={identical}  trace_events={len(events)}  "
                  f"stall_reconciled={reconciles}  "
                  f"segments_add_up={adds_up}  summary_carries={carried}")
    if verbose:
        print(f"[obs-selftest] {'PASSED' if ok else 'FAILED'}")
    return ok


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities: trace export, "
                    "critical-path attribution, self-test.")
    parser.add_argument("--selftest", action="store_true",
                        help="tiny-workload end-to-end obs check")
    subparsers = parser.add_subparsers(dest="command")

    trace_parser = subparsers.add_parser(
        "trace", help="run one simulation and export a Chrome trace")
    trace_parser.add_argument("output",
                              help="trace-event JSON destination")
    trace_parser.add_argument("--mechanism", default="lrp")
    _add_workload_args(trace_parser)

    report_parser = subparsers.add_parser(
        "report", help="print the critical-path attribution report")
    report_parser.add_argument("--mechanisms", nargs="+",
                               default=list(SELFTEST_MECHANISMS))
    _add_workload_args(report_parser)

    args = parser.parse_args(argv)
    if args.selftest:
        return 0 if run_selftest() else 1
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "report":
        return cmd_report(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
