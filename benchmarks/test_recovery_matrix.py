"""Recovery validation: the Section 3/4 argument as an experiment.

Every mechanism runs every LFD; each finished run is crashed at many
persist-log prefixes and the structure's null-recovery validator
judges the NVM image. RP-enforcing mechanisms (SB/BB/LRP) must recover
at every point; NOP must corrupt; ARP must corrupt somewhere across
the set-structured workloads (Figure 1's argument).
"""

import pytest
from conftest import run_once

from repro.bench.figures import run_recovery_matrix


@pytest.fixture(scope="module")
def matrix():
    return run_recovery_matrix()


def test_recovery_matrix_runs(benchmark):
    result = run_once(benchmark, run_recovery_matrix)
    print("\n" + result.render())
    for row in result.rows:
        key = f"{row['workload']}/{row['mechanism']}"
        benchmark.extra_info[key] = row["unrecoverable"]


class TestRecoveryMatrixShape:
    def test_rp_mechanisms_always_recover(self, matrix):
        for row in matrix.rows:
            if row["mechanism"] in ("sb", "bb", "dpo", "hops", "lrp"):
                assert row["unrecoverable"] == 0, row

    def test_nop_corrupts_most_workloads(self, matrix):
        corrupted = sum(
            1 for row in matrix.rows
            if row["mechanism"] == "nop" and row["unrecoverable"] > 0)
        assert corrupted >= 4

    def test_arp_corrupts_somewhere(self, matrix):
        total = sum(row["unrecoverable"] for row in matrix.rows
                    if row["mechanism"] == "arp")
        assert total > 0

    def test_coverage_is_complete(self, matrix):
        workloads = {row["workload"] for row in matrix.rows}
        mechanisms = {row["mechanism"] for row in matrix.rows}
        assert len(workloads) == 5
        assert mechanisms == {"nop", "arp", "sb", "bb", "dpo", "hops",
                              "lrp"}
