"""Coverage-weighted crash-prefix sampling.

Uniform prefix sampling (``recovery.crash_points``) spends most of its
budget on boring cuts: long stretches of the persist log where nothing
synchronization-relevant became durable. The Figure-1 failure mode —
a link publish persisted before the node fields it publishes — lives
*at* the durability boundary of release-adjacent persists: the log
index right before/after a persist triggered by a release, a
downgrade of a released line, or an acquiring RMW.

This module weights each candidate crash prefix by the provenance
trigger of the log records flanking it and samples without
replacement under a deterministic RNG. Prefixes 0 and the full log
are always included (the recovery suite's invariant endpoints).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

#: Trigger -> sampling weight of a flanking crash prefix. Release /
#: downgrade / acquiring-RMW persists carry the hb edges the
#: consistent-cut argument is about; epoch drains and barriers batch
#: many lines and get a milder boost; plain evictions stay baseline.
TRIGGER_WEIGHTS: Dict[str, int] = {
    "release": 8,
    "downgrade": 8,
    "rmw-acquire": 8,
    "epoch-drain": 2,
    "barrier": 2,
    "epoch-wrap": 2,
}

_BASE_WEIGHT = 1


def prefix_weights(log, trigger_by_seq: Dict[int, str]) -> List[int]:
    """Sampling weight of every crash prefix ``0..len(log)``.

    Prefix ``k`` cuts the log between record ``k-1`` (the youngest
    durable persist) and record ``k`` (the first lost one); it
    inherits the larger flanking trigger weight.
    """
    record_weights = [
        TRIGGER_WEIGHTS.get(trigger_by_seq.get(record.issue_seq, ""),
                            _BASE_WEIGHT)
        for record in log
    ]
    weights = []
    for prefix in range(len(log) + 1):
        before = record_weights[prefix - 1] if prefix > 0 else _BASE_WEIGHT
        after = record_weights[prefix] if prefix < len(log) else _BASE_WEIGHT
        weights.append(max(before, after))
    return weights


def sample_prefixes(weights: Sequence[int], num_points: int,
                    rng: random.Random) -> List[int]:
    """Weighted sample (without replacement) of crash prefixes.

    Always contains prefix 0 and the full log. Degrades to every
    prefix exactly once when the budget covers the whole log. The
    result is sorted and duplicate-free.
    """
    log_len = len(weights) - 1
    if num_points >= log_len + 1:
        return list(range(log_len + 1))
    chosen = {0, log_len}
    candidates = [p for p in range(log_len + 1) if p not in chosen]
    live_weights = [weights[p] for p in candidates]
    while len(chosen) < num_points and candidates:
        total = sum(live_weights)
        point = rng.random() * total
        acc = 0.0
        pick = len(candidates) - 1
        for i, weight in enumerate(live_weights):
            acc += weight
            if point < acc:
                pick = i
                break
        chosen.add(candidates.pop(pick))
        live_weights.pop(pick)
    return sorted(chosen)


def trigger_map(provenance: Dict[str, object]) -> Dict[int, str]:
    """``issue_seq -> trigger`` from a serialized provenance capture."""
    return {
        int(entry["seq"]): str(entry["trigger"])
        for entry in provenance.get("persists", ())
    }
