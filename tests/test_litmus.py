"""Litmus tests for the persistency-model predicates (Sections 3-4).

The centerpiece is the paper's Figure 1: the persist order
``link-before-fields`` must be allowed by ARP (its documented weakness)
and forbidden by RP.
"""

import pytest

from repro.consistency.litmus import (
    FIG1_ADDRS,
    all_interleavings,
    cas,
    count_interleavings,
    figure1_initial_memory,
    figure1_insert,
    figure1_sequential_schedule,
    read,
    run_interleaving,
    write,
)
from repro.consistency.events import MemOrder
from repro.persistency.rp_model import (
    arp_allows,
    arp_pairs,
    persist_sequence_from_log,
    rp_allows,
)


def _figure1_trace():
    return run_interleaving(figure1_insert(),
                            figure1_sequential_schedule(),
                            init=figure1_initial_memory())


class TestInterpreter:
    def test_sequential_schedule_succeeds(self):
        trace = _figure1_trace()
        # Both CASes must have succeeded in the sequential interleaving.
        rmws = [e for e in trace.events if e.kind.value == "rmw"]
        assert len(rmws) == 2
        assert all(e.success for e in rmws)

    def test_schedule_overrun_rejected(self):
        program = [[write(0x8, 1)]]
        with pytest.raises(ValueError):
            run_interleaving(program, [0, 0])

    def test_schedule_underrun_rejected(self):
        program = [[write(0x8, 1), write(0x10, 2)]]
        with pytest.raises(ValueError):
            run_interleaving(program, [0])

    def test_all_interleavings_count(self):
        program = [[write(0x8, 1)], [write(0x10, 2), read(0x8)]]
        schedules = list(all_interleavings(program))
        assert len(schedules) == 3  # C(3,1) placements of thread 0's op

    def test_all_interleavings_are_distinct(self):
        """Multiset permutations: a 2x2 program has 4! = 24 labelled
        permutations but only C(4,2) = 6 distinct schedules — each
        emitted exactly once (the old generator yielded duplicates)."""
        program = [[write(0x8, 1), write(0x10, 2)],
                   [write(0x18, 3), write(0x20, 4)]]
        schedules = [tuple(s) for s in all_interleavings(program)]
        assert len(schedules) == 6
        assert len(set(schedules)) == 6
        assert schedules == sorted(schedules)  # lexicographic order

    def test_count_interleavings_matches_generator(self):
        program = [[write(0x8, 1)] * 3, [write(0x10, 2)] * 2,
                   [write(0x18, 3)]]
        assert count_interleavings(program) == 60  # 6!/(3!2!1!)
        assert len(list(all_interleavings(program))) == 60

    def test_figure1_interleavings_deduplicated(self):
        program = figure1_insert()
        schedules = [tuple(s) for s in all_interleavings(program)]
        assert len(schedules) == count_interleavings(program)
        assert len(set(schedules)) == len(schedules)

    def test_negative_thread_id_rejected(self):
        """A negative id would silently alias a real thread through
        Python's negative indexing — it must raise instead."""
        program = [[write(0x8, 1)], [write(0x10, 2)]]
        with pytest.raises(ValueError, match="invalid thread id"):
            run_interleaving(program, [-1, 0])

    def test_out_of_range_thread_id_rejected(self):
        program = [[write(0x8, 1)], [write(0x10, 2)]]
        with pytest.raises(ValueError, match="invalid thread id"):
            run_interleaving(program, [0, 2])

    def test_ops_constructors(self):
        op = cas(0x8, 1, 2)
        assert op.kind == "cas"
        assert op.order is MemOrder.RELEASE
        assert read(0x8).kind == "r"
        assert write(0x8, 0).kind == "w"


class TestFigure1Semantics:
    def test_rp_forbids_link_before_fields(self):
        """The Figure 1(e) failure: the linking CAS persists first."""
        trace = _figure1_trace()
        link_cas = next(e for e in trace.events
                        if e.is_release and e.thread_id == 0)
        # Persist ONLY the link (crash before the fields persist).
        assert not rp_allows(trace, [link_cas.event_id])

    def test_arp_allows_link_before_fields(self):
        trace = _figure1_trace()
        link_cas = next(e for e in trace.events
                        if e.is_release and e.thread_id == 0)
        assert arp_allows(trace, [link_cas.event_id])

    def test_rp_allows_program_order_persists(self):
        trace = _figure1_trace()
        order = [e.event_id for e in trace.writes()]
        assert rp_allows(trace, order)
        assert arp_allows(trace, order)

    def test_rp_allows_prefix_crashes_of_program_order(self):
        trace = _figure1_trace()
        order = [e.event_id for e in trace.writes()]
        for cut in range(len(order) + 1):
            assert rp_allows(trace, order[:cut])

    def test_arp_rule_pairs_cross_thread(self):
        """W(T0) po Rel sw Acq po W'(T1) => ordered under ARP."""
        trace = _figure1_trace()
        pairs = arp_pairs(trace)
        t0_fields = [e.event_id for e in trace.events
                     if e.thread_id == 0 and e.is_write_effect
                     and not e.is_release]
        t1_fields = [e.event_id for e in trace.events
                     if e.thread_id == 1 and e.is_write_effect
                     and not e.is_release]
        for w0 in t0_fields:
            for w1 in t1_fields:
                assert (w0, w1) in pairs

    def test_arp_forbids_cross_thread_inversion(self):
        trace = _figure1_trace()
        t0_field = next(e.event_id for e in trace.events
                        if e.thread_id == 0 and e.is_write_effect)
        t1_field = next(e.event_id for e in trace.events
                        if e.thread_id == 1 and e.is_write_effect)
        assert not arp_allows(trace, [t1_field, t0_field])
        # RP forbids it as well (RP is strictly stronger).
        assert not rp_allows(trace, [t1_field, t0_field])

    def test_rp_stronger_than_arp_on_all_interleavings(self):
        """Any persist sequence RP allows, ARP allows too (Section 4:
        RP strengthens ARP)."""
        program = figure1_insert()
        init = figure1_initial_memory()
        checked = 0
        for schedule in all_interleavings(program):
            trace = run_interleaving(program, schedule, init=init)
            order = [e.event_id for e in trace.writes()]
            for cut in range(len(order) + 1):
                seq = order[:cut]
                if rp_allows(trace, seq):
                    assert arp_allows(trace, seq)
                checked += 1
            if checked > 400:
                break

    def test_duplicate_persist_rejected(self):
        trace = _figure1_trace()
        w = trace.writes()[0].event_id
        with pytest.raises(ValueError):
            rp_allows(trace, [w, w])


class TestPersistSequenceFromLog:
    def test_dedup_and_order(self):
        trace = _figure1_trace()
        log = [{0x100: 0}, {0x100: 0, 0x108: 1}, {0x110: 2}]
        seq = persist_sequence_from_log(trace, log)
        assert seq == [0, 1, 2]
