"""``repro.obs`` — observability for the simulator.

The subsystem has three layers:

* an :class:`Observer` instrumentation hub that the machine, scheduler,
  coherence fabric and persistency mechanisms feed through guarded
  hooks (``if obs is not None: ...`` at every call site, so the
  disabled path costs one attribute load and never perturbs timing);
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters/histograms
  that serializes into :class:`~repro.exp.runner.RunSummary` and thus
  travels through worker processes and the result cache for free;
* a :class:`~repro.obs.timeline.TimelineSampler` (opt-in via
  ``timeline_interval``) that attributes the same quantities to fixed
  cycle windows — the time axis behind ``python -m repro.obs
  timeline`` and the Chrome counter tracks;
* a :class:`~repro.obs.provenance.ProvenanceTracker` (opt-in via
  ``provenance=True``) that records the causal chain behind every
  persist and stall — trigger event, hb-edge, dirtying site — feeding
  the collapsed-stack flamegraphs (:mod:`repro.obs.flame`) and the
  differential run comparison (:mod:`repro.obs.diff`);
* exporters — a Chrome trace-event JSON writer
  (:mod:`repro.obs.trace`) and the critical-path attribution report
  (:mod:`repro.obs.report`) that splits a run's makespan into
  compute / coherence / persist-stall segments.

``python -m repro.obs`` exposes ``trace`` / ``report`` / ``timeline``
/ ``audit`` / ``flame`` / ``diff`` / ``provenance`` subcommands and
``--selftest``; the ``repro.exp`` and ``repro.bench.figures`` CLIs
collect the same data behind ``--obs`` / ``--trace-out`` /
``--provenance-out``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.coverage import CoverageMap, coverage_from_obs
from repro.obs.metrics import Histogram, MetricsRegistry, merged_registries
from repro.obs.provenance import ProvenanceTracker
from repro.obs.spans import REQUEST_BOUNDARY, SpanTracker
from repro.obs.timeline import (
    TimelineSampler,
    chrome_counter_events,
    merged_timelines,
)
from repro.obs.trace import TraceCollector, write_chrome_trace

__all__ = [
    "Observer",
    "CoverageMap",
    "coverage_from_obs",
    "Histogram",
    "MetricsRegistry",
    "ProvenanceTracker",
    "REQUEST_BOUNDARY",
    "SpanTracker",
    "TimelineSampler",
    "TraceCollector",
    "merged_registries",
    "merged_timelines",
    "write_chrome_trace",
]


class Observer:
    """Per-run instrumentation hub: metrics plus (optional) tracing.

    Instrumented components hold a reference that is ``None`` when
    observability is off; every hook site guards with
    ``if obs is not None`` so the disabled path stays near-zero cost.
    Hooks only *read* simulator state — attaching an observer never
    changes latencies, stats or the persist log (pinned by
    ``tests/test_obs.py``).
    """

    __slots__ = ("metrics", "trace", "timeline", "provenance", "spans")

    def __init__(self, *, trace: bool = False,
                 timeline_interval: Optional[int] = None,
                 provenance: bool = False,
                 spans: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self.trace: Optional[TraceCollector] = (
            TraceCollector() if trace else None)
        self.timeline: Optional[TimelineSampler] = (
            TimelineSampler(timeline_interval)
            if timeline_interval is not None else None)
        self.provenance: Optional[ProvenanceTracker] = (
            ProvenanceTracker() if provenance else None)
        # Request spans (repro.obs.spans): boundary clocks of service
        # workload requests. Flat per-thread lists, so the batch
        # engine records them without leaving its fast path.
        self.spans: Optional[SpanTracker] = (
            SpanTracker() if spans else None)

    # -- metrics -------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        counters = self.metrics.counters
        counters[name] = counters.get(name, 0) + value

    def observe(self, name: str, value: int) -> None:
        self.metrics.observe(name, value)

    # -- timeline (no-ops unless a sampling interval was requested) ----

    def tick(self, name: str, ts: int, value: int = 1) -> None:
        if self.timeline is not None:
            self.timeline.tick(name, ts, value)

    def gauge(self, name: str, ts: int, value: int) -> None:
        if self.timeline is not None:
            self.timeline.gauge(name, ts, value)

    # -- tracing (no-ops unless trace collection was requested) --------

    def span(self, track: str, name: str, ts: int, dur: int,
             cat: str = "sim", args: Optional[dict] = None) -> None:
        if self.trace is not None:
            self.trace.span(track, name, ts, dur, cat, args)

    def instant(self, track: str, name: str, ts: int,
                cat: str = "sim", args: Optional[dict] = None) -> None:
        if self.trace is not None:
            self.trace.instant(track, name, ts, cat, args)

    # -- export --------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """Picklable dump: metrics always, timeline series and trace
        events when collected. With both a trace and a timeline, the
        timeline additionally rides in the trace as counter tracks."""
        data: Dict[str, object] = {"metrics": self.metrics.to_dict()}
        if self.timeline is not None:
            data["timeline"] = self.timeline.to_dict()
        if self.provenance is not None:
            data["provenance"] = self.provenance.to_dict()
        if self.spans is not None:
            data["spans"] = self.spans.to_dict()
        if self.trace is not None:
            events = self.trace.chrome_events()
            if self.timeline is not None:
                events = events + chrome_counter_events(self.timeline)
            data["trace_events"] = events
        return data
