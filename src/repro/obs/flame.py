"""Collapsed-stack flamegraphs from provenance captures.

Output is Brendan Gregg's *folded* format — one stack per line,
``frame;frame;... value`` — directly loadable by ``flamegraph.pl`` and
speedscope. Two views over one serialized
:class:`~repro.obs.provenance.ProvenanceTracker` dump:

* ``stalls`` (the default): value = persist-stall **cycles**, stacks
  ``site;reason;mechanism``. The per-site totals sum exactly to
  ``RunStats.persist_stall_cycles`` (same single charge point,
  ``PersistencyMechanism._charge_stall``) — pinned by the obs selftest.
* ``persists``: value = persist **count**, stacks
  ``site;trigger;mechanism`` — where the writebacks come from and why
  they were triggered, whether or not anyone stalled on them.

Site ids never contain ``;`` (they use dots and dashes), so the frame
separator is unambiguous.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.provenance import persist_entries

#: The two supported flamegraph views.
MODES = ("stalls", "persists")


def collapse_stacks(data: Dict[str, object],
                    mode: str = "stalls") -> Dict[str, int]:
    """Fold a provenance dump into ``stack -> value``.

    Stacks are rooted at the *site* so sibling sites sort together in
    the rendered graph; the trigger/reason and mechanism frames nest
    underneath.
    """
    if mode not in MODES:
        raise ValueError(
            f"unknown flame mode {mode!r} (expected one of {MODES})")
    mechanism = data.get("mechanism", "?")
    folds: Dict[str, int] = {}
    if mode == "stalls":
        for site, reason, cycles, _count in data.get("stalls", []):
            stack = f"{site};{reason};{mechanism}"
            folds[stack] = folds.get(stack, 0) + cycles
    else:
        for entry in persist_entries(data):
            stack = f"{entry['site']};{entry['trigger']};{mechanism}"
            folds[stack] = folds.get(stack, 0) + 1
    return folds


def write_collapsed(folds: Dict[str, int], path: str) -> None:
    """Write folds in collapsed-stack format (sorted for stable diffs)."""
    with open(path, "w") as handle:
        for stack in sorted(folds):
            handle.write(f"{stack} {folds[stack]}\n")


def total(folds: Dict[str, int]) -> int:
    return sum(folds.values())


def by_site(folds: Dict[str, int]) -> Dict[str, int]:
    """Aggregate folds to their root (site) frame."""
    sites: Dict[str, int] = {}
    for stack, value in folds.items():
        site = stack.split(";", 1)[0]
        sites[site] = sites.get(site, 0) + value
    return sites


def top_rows(folds: Dict[str, int],
             limit: int = 15) -> List[Tuple[str, int, float]]:
    """The heaviest stacks: (stack, value, share-of-total)."""
    grand = total(folds)
    ranked = sorted(folds.items(), key=lambda kv: (-kv[1], kv[0]))
    return [
        (stack, value, (value / grand) if grand else 0.0)
        for stack, value in ranked[:limit]
    ]


def render_table(data: Dict[str, object], mode: str = "stalls",
                 limit: int = 15) -> str:
    """ASCII top-N table of the flamegraph, with the grand total."""
    folds = collapse_stacks(data, mode)
    unit = "cycles" if mode == "stalls" else "persists"
    lines = [
        f"flame view: {mode} · mechanism: {data.get('mechanism', '?')} "
        f"· total {total(folds)} {unit}",
        f"{'value':>12}  {'share':>6}  stack (site;trigger;mechanism)",
    ]
    for stack, value, share in top_rows(folds, limit):
        lines.append(f"{value:>12}  {share:>6.1%}  {stack}")
    if not folds:
        lines.append(f"{'-':>12}  {'-':>6}  (no {unit} recorded)")
    remaining = len(folds) - limit
    if remaining > 0:
        lines.append(f"... {remaining} more stacks (see the collapsed "
                     "output for the full set)")
    return "\n".join(lines)
