"""Ablation: BB's inter-epoch ordering — pipelined vs ack-gated drain.

DESIGN.md calls out the modeling choice: whether the memory system
pipelines BB's epoch-ordered persist stream or serially gates each
epoch on the previous epoch's acks. This ablation quantifies it — the
ack-gated drain is strictly slower, because full barriers over-order
(every epoch behind every epoch), which is exactly the cost LRP's
one-sided barriers avoid (Section 4.2).
"""

import dataclasses

from conftest import run_once

from repro.bench.configs import SCALED_CONFIG, figure_spec
from repro.core.simulator import simulate


def _run_both():
    spec = figure_spec("hashmap", num_threads=16, scale="quick")
    pipelined = simulate(spec, mechanism="bb", config=SCALED_CONFIG)
    gated_config = dataclasses.replace(SCALED_CONFIG,
                                       bb_pipelined_epochs=False)
    gated = simulate(spec, mechanism="bb", config=gated_config)
    nop = simulate(spec, mechanism="nop", config=SCALED_CONFIG)
    return {
        "pipelined": pipelined.makespan / nop.makespan,
        "ack_gated": gated.makespan / nop.makespan,
    }


def test_bb_epoch_ordering_ablation(benchmark):
    result = run_once(benchmark, _run_both)
    print("\nBB epoch-ordering ablation (normalized to NOP):", result)
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in result.items()})
    assert result["ack_gated"] >= result["pipelined"]
