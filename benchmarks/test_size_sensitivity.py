"""Section 6.4: sensitivity to data-structure size.

Paper: varying the size 8K-1M "did not observe a significant change in
the results" — intra-thread effects dominate. We sweep 8K-64K on the
hashmap (our Python-scale band) and assert the flatness.
"""

from conftest import run_once

from repro.bench.figures import run_size_sensitivity


def test_size_sensitivity(benchmark):
    result = run_once(benchmark, run_size_sensitivity, "hashmap")
    print("\n" + result.render())
    for mech, series in result.overheads.items():
        benchmark.extra_info[mech] = [round(v, 1) for v in series]

    # LRP stays nominal at every size.
    assert max(result.overheads["lrp"]) < 15.0
    # No blow-up with size for either mechanism: the largest size is
    # within a factor of ~2.5 of the band's smallest overhead + slack.
    for mech in ("bb", "lrp"):
        series = result.overheads[mech]
        assert max(series) - min(series) < 25.0, (mech, series)
