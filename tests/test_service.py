"""Tests for the experiment job service.

The headline guarantee under test: a campaign SIGKILL'd mid-sweep and
resumed produces **byte-identical** aggregate results to an
uninterrupted run, and a job whose result is already journaled or
cached is never executed twice. Beneath it, the building blocks each
get their own pinning: the JSON job codec round-trips exactly, every
queue transition is an atomic rename with a well-defined crash state,
lease recovery re-queues dead workers without stealing from slow live
ones, the shared-cache directory protocol is read-through/publish-on-
write, and the cache hygiene CLI plans before it deletes.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.bench.configs import SCALED_CONFIG, bench_config
from repro.exp import heartbeat
from repro.exp.cache import (
    ENV_SHARED,
    ResultCache,
    execute_prune,
    plan_prune,
    read_stats_since_marker,
    write_stats_marker,
)
from repro.exp.runner import ExperimentRunner, Job, execute_job
from repro.exp.service.campaign import (
    create_campaign,
    open_campaign,
    open_or_create,
)
from repro.exp.service.codec import CODEC_VERSION, decode_job, encode_job
from repro.exp.service.queue import WorkQueue, _write_json
from repro.exp.service.worker import (
    ServiceRunner,
    read_worker_stats,
    run_campaign,
    worker_loop,
)
from repro.workloads.harness import WorkloadSpec
from repro.workloads.kvservice import KVServiceSpec

CONFIG = bench_config(SCALED_CONFIG)


def tiny_jobs(workloads=("queue", "linkedlist"),
              mechanisms=("nop", "sb", "bb", "lrp"), seed=3):
    return [
        Job(spec=WorkloadSpec(structure=workload, num_threads=4,
                              initial_size=64, ops_per_thread=8,
                              seed=seed),
            mechanism=mech, config=CONFIG)
        for workload in workloads
        for mech in mechanisms
    ]


def drained_campaign(root, jobs, **kwargs):
    create_campaign(str(root), jobs, name="t", **kwargs)
    report = run_campaign(str(root), workers=0, poll=0.01)
    assert report.ok
    return open_campaign(str(root))


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------

class TestJobCodec:
    def test_roundtrip_equality_and_digest(self):
        job = tiny_jobs()[0]
        decoded = decode_job(encode_job(job))
        assert decoded == job
        assert decoded.key() == job.key()

    def test_roundtrip_survives_json_serialization(self):
        """The on-disk path: encode -> json.dumps -> loads -> decode."""
        job = tiny_jobs()[3]
        decoded = decode_job(json.loads(json.dumps(encode_job(job))))
        assert decoded == job

    def test_roundtrip_with_options(self):
        job = dataclasses.replace(
            tiny_jobs()[0], crash_points=5, crash_seed=7,
            collect_obs=True, collect_trace=True, timeline_interval=64,
            collect_provenance=True, collect_spans=True,
            schedule_nudges=((3, 1), (9, 0)))
        decoded = decode_job(json.loads(json.dumps(encode_job(job))))
        assert decoded == job
        assert decoded.key() == job.key()

    def test_roundtrip_kvservice_spec(self):
        spec = KVServiceSpec(structure="hashmap", num_threads=4,
                             initial_size=64, requests_per_thread=8,
                             seed=5)
        job = Job(spec=spec, mechanism="lrp", config=CONFIG,
                  collect_spans=True)
        decoded = decode_job(json.loads(json.dumps(encode_job(job))))
        assert decoded == job
        assert isinstance(decoded.spec, KVServiceSpec)

    def test_fuzz_jobs_refused(self):
        job = dataclasses.replace(tiny_jobs()[0], fuzz=object())
        with pytest.raises(ValueError, match="fuzz"):
            encode_job(job)

    def test_unknown_codec_version_refused(self):
        data = encode_job(tiny_jobs()[0])
        data["codec"] = CODEC_VERSION + 1
        with pytest.raises(ValueError, match="codec version"):
            decode_job(data)


# ----------------------------------------------------------------------
# Work queue
# ----------------------------------------------------------------------

class TestWorkQueue:
    def make(self, tmp_path, shards=2, **kwargs):
        queue = WorkQueue(str(tmp_path), num_shards=shards, **kwargs)
        queue.ensure_dirs()
        return queue

    def test_add_and_claim_own_shard(self, tmp_path):
        queue = self.make(tmp_path)
        queue.add(0, "d0")
        queue.add(1, "d1")
        ticket = queue.claim("w0", preferred_shard=0)
        assert (ticket.digest, ticket.shard, ticket.stolen) == \
            ("d0", 0, False)

    def test_steal_prefers_longest_pending_shard(self, tmp_path):
        queue = self.make(tmp_path, shards=3)
        # Shard 1 gets one ticket, shard 2 gets two; worker 0's own
        # shard is empty, so it must steal from shard 2 first.
        queue.add(1, "d1")
        queue.add(2, "d2a")
        queue.add(5, "d2b")
        ticket = queue.claim("w0", preferred_shard=0)
        assert ticket.shard == 2 and ticket.stolen

    def test_claim_is_exactly_once(self, tmp_path):
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        first = queue.claim("w0", preferred_shard=0)
        second = queue.claim("w1", preferred_shard=0)
        assert first is not None and second is None

    def test_complete_moves_to_done(self, tmp_path):
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        queue.complete(ticket, "w0", cached=False)
        counts = queue.counts()
        assert (counts["done"], counts["leased"], counts["pending"]) \
            == (1, 0, 0)
        assert "d0" in queue.done_digests()

    def test_fail_requeues_with_backoff(self, tmp_path):
        queue = self.make(tmp_path, shards=1, backoff=10.0)
        queue.add(0, "d0")
        now = time.time()
        ticket = queue.claim("w0", preferred_shard=0, now=now)
        assert queue.fail(ticket, "boom", now=now) is True
        # Backed off: not runnable now, runnable after the delay.
        assert queue.claim("w0", preferred_shard=0, now=now) is None
        retry = queue.claim("w0", preferred_shard=0, now=now + 11.0)
        assert retry is not None and retry.attempts == 1

    def test_backoff_grows_exponentially(self, tmp_path):
        queue = self.make(tmp_path, shards=1, backoff=10.0,
                          max_attempts=4)
        queue.add(0, "d0")
        now = time.time()
        ticket = queue.claim("w0", preferred_shard=0, now=now)
        queue.fail(ticket, "a", now=now)
        ticket = queue.claim("w0", preferred_shard=0, now=now + 11.0)
        queue.fail(ticket, "b", now=now)
        # Second retry delay is backoff * 2**1 = 20s.
        assert queue.claim("w0", preferred_shard=0, now=now + 11.0) \
            is None
        assert queue.claim("w0", preferred_shard=0, now=now + 21.0) \
            is not None

    def test_fail_exhausts_to_failed(self, tmp_path):
        queue = self.make(tmp_path, shards=1, max_attempts=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        assert queue.fail(ticket, "boom") is False
        counts = queue.counts()
        assert (counts["failed"], counts["pending"]) == (1, 0)
        assert queue.failed_tickets()["d0"]["error"] == "boom"

    def test_recover_requeues_dead_worker(self, tmp_path):
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        # Re-attribute the lease to a provably dead pid (the claimant
        # pid lives in the lease filename).
        leased_dir = os.path.join(queue.root, "leased")
        os.rename(
            os.path.join(leased_dir, queue._lease_name(ticket.name)),
            os.path.join(leased_dir,
                         queue._lease_name(ticket.name, 2 ** 22 + 1)))
        report = queue.recover()
        assert report.requeued == 1
        requeued = queue.claim("w1", preferred_shard=0)
        assert requeued is not None and requeued.attempts == 1

    def test_recover_renews_live_expired_lease(self, tmp_path):
        """A slow-but-alive worker is renewed, never stolen from."""
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        lease = os.path.join(queue.root, "leased",
                             queue._lease_name(ticket.name))
        payload = json.load(open(lease))
        payload["expires"] = time.time() - 100.0  # pid stays ours
        _write_json(lease, payload)
        report = queue.recover()
        assert report.renewed == 1 and report.requeued == 0
        assert queue.counts()["leased"] == 1

    def test_recover_clears_orphan_with_done_twin(self, tmp_path):
        """Crash between done-write and lease-unlink is repaired."""
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        _write_json(os.path.join(queue.root, "done", ticket.name),
                    {"attempts": 0, "worker": "w0", "cached": False})
        report = queue.recover()
        assert report.orphans_cleared == 1
        counts = queue.counts()
        assert (counts["done"], counts["leased"]) == (1, 0)

    def test_recover_mid_claim_crash_requeues_immediately(
            self, tmp_path):
        """The claim rename embeds the claimant pid in the filename,
        so a crash before the lease-payload write is still
        attributable: dead claimant -> immediate requeue, live
        claimant -> left alone. No TTL wait, no mtime heuristics."""
        queue = self.make(tmp_path, shards=1)
        queue.add(0, "d0")
        queue.add(1, "d1")
        pending = queue._shard_dir(0)
        leased = os.path.join(queue.root, "leased")
        # d0: claimant (a dead pid) crashed right after the rename.
        os.rename(os.path.join(pending, "000000.d0.json"),
                  os.path.join(leased, queue._lease_name(
                      "000000.d0.json", 2 ** 22 + 1)))
        # d1: a live claimant (us) is mid-claim right now.
        os.rename(os.path.join(pending, "000001.d1.json"),
                  os.path.join(leased,
                               queue._lease_name("000001.d1.json")))
        report = queue.recover()
        assert report.requeued == 1
        counts = queue.counts()
        assert (counts["pending"], counts["leased"]) == (1, 1)

    def test_recover_exhausts_repeatedly_dying_worker(self, tmp_path):
        queue = self.make(tmp_path, shards=1, max_attempts=1)
        queue.add(0, "d0")
        ticket = queue.claim("w0", preferred_shard=0)
        leased_dir = os.path.join(queue.root, "leased")
        os.rename(
            os.path.join(leased_dir, queue._lease_name(ticket.name)),
            os.path.join(leased_dir,
                         queue._lease_name(ticket.name, 2 ** 22 + 1)))
        report = queue.recover()
        assert report.exhausted == 1
        assert queue.counts()["failed"] == 1


# ----------------------------------------------------------------------
# Campaign directory
# ----------------------------------------------------------------------

class TestCampaign:
    def test_create_open_roundtrip(self, tmp_path):
        jobs = tiny_jobs()
        create_campaign(str(tmp_path / "c"), jobs, name="t",
                        num_shards=3)
        campaign = open_campaign(str(tmp_path / "c"))
        assert campaign.name == "t"
        assert campaign.queue.num_shards == 3
        assert len(campaign.unique) == len(jobs)
        assert campaign.status().pending == len(jobs)

    def test_create_refuses_existing_directory(self, tmp_path):
        create_campaign(str(tmp_path / "c"), tiny_jobs(), name="t")
        with pytest.raises(FileExistsError):
            create_campaign(str(tmp_path / "c"), tiny_jobs(), name="t")

    def test_extend_is_digest_idempotent(self, tmp_path):
        jobs = tiny_jobs()
        campaign = create_campaign(str(tmp_path / "c"), jobs, name="t")
        assert campaign.extend(jobs) == []  # no new digests
        assert len(campaign.unique) == len(jobs)
        assert len(campaign.order) == 2 * len(jobs)
        assert campaign.status().pending == len(jobs)  # no new tickets

    def test_ensure_tickets_repairs_mid_submit_crash(self, tmp_path):
        jobs = tiny_jobs()
        campaign = create_campaign(str(tmp_path / "c"), jobs, name="t")
        # Simulate a crash between the meta write and ticket adds.
        victim = campaign.queue.claim("w0", preferred_shard=0)
        os.unlink(os.path.join(
            campaign.queue.root, "leased",
            campaign.queue._lease_name(victim.name)))
        assert campaign.ensure_tickets() == 1
        assert campaign.status().pending == len(jobs)

    def test_results_journal_skips_torn_lines(self, tmp_path):
        campaign = create_campaign(str(tmp_path / "c"), tiny_jobs(),
                                   name="t")
        campaign.append_result({"digest": "d0", "cached": False,
                                "fingerprint": {}})
        with open(campaign.results_path, "a") as handle:
            handle.write('{"digest": "d1", "cach')  # SIGKILL mid-append
        records = campaign.read_results()
        assert [r["digest"] for r in records] == ["d0"]

    def test_results_by_digest_keeps_first(self, tmp_path):
        campaign = create_campaign(str(tmp_path / "c"), tiny_jobs(),
                                   name="t")
        campaign.append_result({"digest": "d0", "worker": "w0",
                                "fingerprint": {}})
        campaign.append_result({"digest": "d0", "worker": "w1",
                                "fingerprint": {}})
        assert campaign.results_by_digest()["d0"]["worker"] == "w0"

    def test_aggregate_raises_while_incomplete(self, tmp_path):
        campaign = create_campaign(str(tmp_path / "c"), tiny_jobs(),
                                   name="t")
        with pytest.raises(RuntimeError, match="incomplete"):
            campaign.aggregate()

    def test_open_or_create_resubmission_adds_nothing(self, tmp_path):
        jobs = tiny_jobs()
        first = open_or_create(str(tmp_path / "c"), jobs)
        again = open_or_create(str(tmp_path / "c"), jobs)
        assert again.unique == first.unique
        assert again.status().pending == len(jobs)


# ----------------------------------------------------------------------
# Worker pool / campaign execution
# ----------------------------------------------------------------------

class TestCampaignExecution:
    def test_in_process_drain_completes(self, tmp_path):
        jobs = tiny_jobs()
        campaign = drained_campaign(tmp_path / "c", jobs)
        status = campaign.status()
        assert status.complete and status.journaled == len(jobs)
        cache = campaign.cache()
        assert all(cache.get(job.key()) is not None for job in jobs)

    def test_multiworker_aggregate_matches_in_process(self, tmp_path):
        """Execution order and worker count never change the bytes."""
        jobs = tiny_jobs()
        serial = drained_campaign(tmp_path / "a", jobs)
        create_campaign(str(tmp_path / "b"), jobs, name="t")
        report = run_campaign(str(tmp_path / "b"), workers=2, poll=0.02)
        assert report.ok
        assert open_campaign(str(tmp_path / "b")).aggregate() \
            == serial.aggregate()

    def test_resume_of_finished_campaign_executes_nothing(self,
                                                          tmp_path):
        jobs = tiny_jobs()
        campaign = drained_campaign(tmp_path / "c", jobs)
        blob = campaign.aggregate()
        report = run_campaign(str(tmp_path / "c"), workers=0, poll=0.01)
        assert report.ok
        assert report.worker_stats[-1]["executed"] == 0
        assert open_campaign(str(tmp_path / "c")).aggregate() == blob

    def test_cached_jobs_never_reexecute(self, tmp_path, monkeypatch):
        """Satellite pin: a job whose cache entry exists is journaled
        as cached and not simulated, even from a fresh queue."""
        monkeypatch.delenv(ENV_SHARED, raising=False)
        jobs = tiny_jobs()
        campaign = create_campaign(str(tmp_path / "c"), jobs, name="t")
        cache = campaign.cache()
        for job in jobs:
            cache.put(job.key(), execute_job(job))
        stats = worker_loop(str(tmp_path / "c"), 0, poll=0.01)
        assert stats.executed == 0
        assert stats.cache_hits == len(jobs)
        records = campaign.read_results()
        assert len(records) == len(jobs)
        assert all(record["cached"] for record in records)

    def test_failing_job_retries_then_fails_campaign(self, tmp_path):
        jobs = tiny_jobs(mechanisms=("nop",))
        bogus = [dataclasses.replace(jobs[0], mechanism="bogus")]
        create_campaign(str(tmp_path / "c"), bogus, name="t",
                        max_attempts=2, backoff=0.01)
        report = run_campaign(str(tmp_path / "c"), workers=0, poll=0.01)
        assert not report.ok
        status = report.status
        assert status.failed == 1 and status.finished
        failed = open_campaign(str(tmp_path / "c"))
        payloads = failed.queue.failed_tickets()
        assert all(p["attempts"] == 2 for p in payloads.values())

    def test_worker_stats_written(self, tmp_path):
        drained_campaign(tmp_path / "c", tiny_jobs())
        stats = read_worker_stats(str(tmp_path / "c"))
        assert stats and stats[0]["worker"] == "w0"
        assert sum(s["executed"] for s in stats) == len(tiny_jobs())

    def test_cache_skip_writes_terminal_heartbeat(self, tmp_path,
                                                  monkeypatch):
        """Satellite: --watch never shows a finished (cache-skipped)
        job as running."""
        jobs = tiny_jobs(mechanisms=("nop", "lrp"))
        campaign = create_campaign(str(tmp_path / "c"), jobs, name="t")
        cache = campaign.cache()
        for job in jobs:
            cache.put(job.key(), execute_job(job))
        hb_dir = tmp_path / "hb"
        monkeypatch.setenv(heartbeat.ENV_DIR, str(hb_dir))
        worker_loop(str(tmp_path / "c"), 0, poll=0.01)
        entries = heartbeat.read_heartbeats(str(hb_dir))
        job_entries = [e for e in entries
                       if not str(e["label"]).startswith("svc-")]
        assert len(job_entries) == len(jobs)
        assert all(e["state"] == "done" and e.get("cached")
                   for e in job_entries)
        assert heartbeat.all_terminal(entries)


# ----------------------------------------------------------------------
# Crash / resume (the headline guarantee)
# ----------------------------------------------------------------------

def _spawn_run(root, workers=2):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(
        os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    env.pop(ENV_SHARED, None)
    env.pop(heartbeat.ENV_DIR, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.exp.service", "run", root,
         "--workers", str(workers), "--quiet", "--poll", "0.02"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=env, start_new_session=True)


@pytest.mark.slow
class TestCrashResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """Kill a campaign at randomized points mid-sweep; resuming
        yields byte-identical aggregates with zero re-execution."""
        import random

        jobs = tiny_jobs(workloads=("queue", "linkedlist", "hashmap"))
        baseline = drained_campaign(tmp_path / "base", jobs).aggregate()
        rng = random.Random(1234)
        interrupted = 0
        for attempt in range(4):
            root = str(tmp_path / f"kill-{attempt}")
            campaign = create_campaign(root, jobs, name="t")
            proc = _spawn_run(root)
            deadline = time.time() + 120.0
            killed = False
            threshold = rng.randint(1, max(1, len(jobs) // 2))
            try:
                while time.time() < deadline and proc.poll() is None:
                    if len(campaign.read_results()) >= threshold:
                        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                        killed = True
                        break
                    time.sleep(0.005)
            finally:
                if proc.poll() is None and not killed:
                    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait()
            if killed:
                interrupted += 1
            report = run_campaign(root, workers=2, poll=0.02)
            assert report.ok
            resumed = open_campaign(root)
            assert resumed.aggregate() == baseline
            # No digest may carry two uncached (executed) records.
            uncached = {}
            for record in resumed.read_results():
                if not record.get("cached"):
                    digest = record["digest"]
                    uncached[digest] = uncached.get(digest, 0) + 1
            assert all(count == 1 for count in uncached.values())
            if interrupted >= 2:
                break
        assert interrupted >= 1, \
            "no attempt was interrupted mid-sweep; grid too small"

    def test_killed_worker_lease_is_recovered(self, tmp_path):
        """SIGKILL one worker process: the coordinator re-queues its
        lease and the survivors finish the campaign."""
        jobs = tiny_jobs(workloads=("queue", "linkedlist", "hashmap"))
        baseline = drained_campaign(tmp_path / "base", jobs).aggregate()
        for attempt in range(4):
            root = str(tmp_path / f"wkill-{attempt}")
            campaign = create_campaign(root, jobs, name="t")
            leased_dir = os.path.join(campaign.queue.root, "leased")
            proc = _spawn_run(root)
            victim = None
            deadline = time.time() + 120.0
            try:
                while time.time() < deadline and proc.poll() is None:
                    for name in os.listdir(leased_dir):
                        split = campaign.queue._split_lease(name)
                        if split is None:
                            continue
                        pid = split[1]
                        if pid > 0 and pid != proc.pid:
                            victim = pid
                            break
                    if victim is not None:
                        break
                    time.sleep(0.002)
                if victim is not None:
                    try:
                        os.kill(victim, signal.SIGKILL)
                    except ProcessLookupError:
                        victim = None
                returncode = proc.wait(timeout=120.0)
            finally:
                if proc.poll() is None:
                    os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                    proc.wait()
            if victim is None:
                continue  # campaign finished before we could aim
            assert returncode == 0
            assert open_campaign(root).aggregate() == baseline
            return
        pytest.fail("never caught a worker holding a lease")


# ----------------------------------------------------------------------
# ServiceRunner facade
# ----------------------------------------------------------------------

class TestServiceRunner:
    def test_matches_experiment_runner(self, tmp_path):
        jobs = tiny_jobs()
        direct = ExperimentRunner(jobs=1).run(jobs)
        service = ServiceRunner(str(tmp_path / "c"), workers=0)
        summaries = service.run(jobs)
        assert [(s.spec.structure, s.mechanism, s.makespan,
                 s.persist_log_digest) for s in summaries] \
            == [(s.spec.structure, s.mechanism, s.makespan,
                 s.persist_log_digest) for s in direct]

    def test_counts_hits_and_misses(self, tmp_path):
        jobs = tiny_jobs(mechanisms=("nop", "lrp"))
        service = ServiceRunner(str(tmp_path / "c"), workers=0)
        service.run(jobs)
        assert (service.cache_hits, service.cache_misses) \
            == (0, len(jobs))
        service.run(jobs)  # resumed: everything already journaled
        assert (service.cache_hits, service.cache_misses) \
            == (len(jobs), len(jobs))

    def test_raises_on_permanent_failure(self, tmp_path):
        job = dataclasses.replace(tiny_jobs()[0], mechanism="bogus")
        service = ServiceRunner(str(tmp_path / "c"), workers=0,
                                max_attempts=1)
        with pytest.raises(RuntimeError, match="did not complete"):
            service.run([job])


# ----------------------------------------------------------------------
# Shared cache directory protocol
# ----------------------------------------------------------------------

class TestSharedCache:
    def summary(self):
        return execute_job(tiny_jobs(mechanisms=("nop",))[0])

    def test_put_publishes_to_shared(self, tmp_path):
        cache = ResultCache(tmp_path / "local",
                            shared=tmp_path / "shared")
        cache.put("ab" * 32, self.summary())
        reader = ResultCache(tmp_path / "other",
                             shared=tmp_path / "shared")
        hit = reader.get("ab" * 32)
        assert hit is not None
        assert reader.shared_hits == 1

    def test_read_through_promotes_to_local(self, tmp_path):
        key = "cd" * 32
        ResultCache(tmp_path / "a",
                    shared=tmp_path / "shared").put(key, self.summary())
        reader = ResultCache(tmp_path / "b",
                             shared=tmp_path / "shared")
        assert reader.get(key) is not None
        # Promotion: now present locally even without the shared tier.
        local_only = ResultCache(tmp_path / "b")
        assert local_only.get(key) is not None

    def test_unwritable_shared_tier_degrades_silently(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache = ResultCache(tmp_path / "local", shared=blocker)
        cache.put("ef" * 32, self.summary())  # must not raise
        assert ResultCache(tmp_path / "local").get("ef" * 32) is not None

    def test_campaigns_share_results_via_env(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv(ENV_SHARED, str(tmp_path / "shared"))
        jobs = tiny_jobs(mechanisms=("nop", "sb"))
        drained_campaign(tmp_path / "first", jobs)
        drained_campaign(tmp_path / "second", jobs)
        stats = read_worker_stats(str(tmp_path / "second"))
        assert sum(s["executed"] for s in stats) == 0
        assert sum(s["cache_hits"] for s in stats) == len(jobs)


# ----------------------------------------------------------------------
# Cache stats sidecar and pruning
# ----------------------------------------------------------------------

class TestCacheStatsAndPrune:
    def test_flush_stats_accumulates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("aa" * 32)  # miss
        cache.put("aa" * 32, {"v": 1})
        cache.get("aa" * 32)  # hit
        assert cache.flush_stats() is True
        window = read_stats_since_marker(cache.stats_path)
        assert (window["hits"], window["misses"],
                window["sessions"]) == (1, 1, 1)

    def test_flush_stats_noop_without_activity(self, tmp_path):
        assert ResultCache(tmp_path).flush_stats() is False

    def test_marker_resets_window(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("aa" * 32)
        cache.flush_stats()
        write_stats_marker(cache.stats_path)
        window = read_stats_since_marker(cache.stats_path)
        assert window["sessions"] == 0 and window["hit_rate"] is None

    def _populated(self, tmp_path, ages):
        cache = ResultCache(tmp_path)
        now = time.time()
        for index, age in enumerate(ages):
            key = f"{index:02d}" + "0" * 62
            cache.put(key, {"payload": "x" * 100})
            path = cache._path(key)
            os.utime(path, (now - age, now - age))
        return cache, now

    def test_plan_prune_older_than(self, tmp_path):
        cache, now = self._populated(tmp_path, [10.0, 1000.0, 5000.0])
        victims = plan_prune(cache, older_than_seconds=500.0, now=now)
        assert len(victims) == 2
        # Pure planning: nothing deleted yet.
        assert cache.entry_count() == 3

    def test_plan_prune_max_bytes_evicts_oldest_first(self, tmp_path):
        cache, now = self._populated(tmp_path, [10.0, 1000.0, 5000.0])
        entry = cache.total_bytes() // 3
        victims = plan_prune(cache, max_bytes=2 * entry, now=now)
        assert len(victims) == 1
        assert "02" in victims[0][0].name  # the oldest entry

    def test_execute_prune_unlinks(self, tmp_path):
        cache, now = self._populated(tmp_path, [10.0, 1000.0, 5000.0])
        victims = plan_prune(cache, older_than_seconds=500.0, now=now)
        removed, freed = execute_prune(victims)
        assert removed == 2 and freed > 0
        assert cache.entry_count() == 1


# ----------------------------------------------------------------------
# Heartbeat hardening
# ----------------------------------------------------------------------

class TestHeartbeatTerminalWrites:
    def test_terminal_write_retries_once(self, tmp_path, monkeypatch):
        writer = heartbeat.HeartbeatWriter(str(tmp_path), "job")
        real_replace = os.replace
        failures = {"left": 1}

        def flaky(src, dst):
            if failures["left"]:
                failures["left"] -= 1
                raise OSError("transient")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky)
        assert writer.update("done") is True
        entries = heartbeat.read_heartbeats(str(tmp_path))
        assert entries[0]["state"] == "done"

    def test_intermediate_write_not_retried(self, tmp_path,
                                            monkeypatch):
        writer = heartbeat.HeartbeatWriter(str(tmp_path), "job")
        calls = {"n": 0}

        def failing(src, dst):
            calls["n"] += 1
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", failing)
        assert writer.update("running") is False
        assert calls["n"] == 1

    def test_terminal_bypasses_throttle(self, tmp_path):
        writer = heartbeat.HeartbeatWriter(str(tmp_path), "job")
        assert writer.update("running") is True
        assert writer.update("running") is False  # throttled
        assert writer.update("done") is True  # terminal: always lands

    def test_runner_cache_hit_emits_terminal_heartbeat(self, tmp_path,
                                                       monkeypatch):
        jobs = tiny_jobs(mechanisms=("nop",))
        cache = ResultCache(tmp_path / "cache")
        ExperimentRunner(jobs=1, cache=cache).run(jobs)
        hb_dir = tmp_path / "hb"
        monkeypatch.setenv(heartbeat.ENV_DIR, str(hb_dir))
        runner = ExperimentRunner(jobs=1, cache=cache)
        runner.run(jobs)
        assert runner.cache_hits == len(jobs)
        entries = heartbeat.read_heartbeats(str(hb_dir))
        assert len(entries) == len(jobs)
        assert all(e["state"] == "done" and e.get("cached")
                   for e in entries)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

class TestServiceCLI:
    def run_cli(self, *argv):
        from repro.exp.service.__main__ import main

        return main(list(argv))

    def test_submit_run_status_aggregate(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        assert self.run_cli(
            "submit", root, "--workloads", "queue",
            "--mechanisms", "nop,lrp", "--threads", "4",
            "--size", "64", "--ops", "8") == 0
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["submitted"] == 2
        assert self.run_cli("status", root) == 1  # incomplete yet
        capsys.readouterr()
        assert self.run_cli("run", root, "--workers", "0",
                            "--quiet") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["complete"] and report["status"]["done"] == 2
        assert self.run_cli("status", root) == 0
        capsys.readouterr()
        out_file = str(tmp_path / "agg.json")
        assert self.run_cli("aggregate", root, "--output",
                            out_file) == 0
        blob = open(out_file, "rb").read()
        assert blob == open_campaign(root).aggregate()

    def test_resume_alias_runs(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        self.run_cli("submit", root, "--workloads", "queue",
                     "--mechanisms", "nop", "--threads", "4",
                     "--size", "64", "--ops", "8")
        capsys.readouterr()
        assert self.run_cli("resume", root, "--workers", "0",
                            "--quiet") == 0

    def test_aggregate_incomplete_errors(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        self.run_cli("submit", root, "--workloads", "queue",
                     "--mechanisms", "nop", "--threads", "4",
                     "--size", "64", "--ops", "8")
        capsys.readouterr()
        assert self.run_cli("aggregate", root) == 1


class TestCacheCLI:
    def run_cli(self, *argv):
        from repro.exp.__main__ import main

        return main(list(argv))

    def test_stats_reports_and_resets_window(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.get("aa" * 32)
        cache.put("aa" * 32, {"v": 1})
        cache.get("aa" * 32)
        cache.flush_stats()
        assert self.run_cli("cache", "stats", "--dir",
                            str(tmp_path)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1 and payload["bytes"] > 0
        assert payload["since_last_stats"]["hits"] == 1
        assert self.run_cli("cache", "stats", "--dir",
                            str(tmp_path)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["since_last_stats"]["sessions"] == 0

    def test_prune_dry_run_then_apply(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("aa" * 32, {"v": 1})
        old = time.time() - 10 * 86400
        os.utime(cache._path("aa" * 32), (old, old))
        assert self.run_cli("cache", "prune", "--dir", str(tmp_path),
                            "--older-than", "7d") == 0
        assert "dry run" in capsys.readouterr().out
        assert cache.entry_count() == 1  # dry run deleted nothing
        assert self.run_cli("cache", "prune", "--dir", str(tmp_path),
                            "--older-than", "7d", "--apply") == 0
        assert cache.entry_count() == 0

    def test_prune_requires_a_limit(self, tmp_path):
        assert self.run_cli("cache", "prune", "--dir",
                            str(tmp_path)) == 2


# ----------------------------------------------------------------------
# bench.history integration
# ----------------------------------------------------------------------

class TestHistoryIntegration:
    def test_service_metric_classification(self):
        from repro.bench.history import classify

        assert classify("killed_run.resume_seconds", 2.2) == "timing"
        assert classify("worker_kill.seconds", 1.4) == "timing"
        assert classify("baseline_seconds", 1.0) == "timing"
        assert classify("throughput_per_sec", 18.0) == "quality"
        assert classify("identical_aggregate", True) == "contract"
        assert classify("ok", True) == "contract"
        assert classify("reexecutions", 0) == "exact"
        assert classify("recovered_leases", 3) == "info"
        assert classify("killed_run.steals", 10) == "info"
        assert classify("killed_run.killed_after_jobs", 1) == "info"
        assert classify("worker_kill.killed_worker_pid", 77) == "info"
        assert classify("shared_cache.published_entries", 4) == "info"
        assert classify("shared_cache.warm_seconds", 0.007) == "info"
        assert classify("shared_cache.second_run_executed", 0) \
            == "exact"

    def test_live_section_renders_campaign(self, tmp_path):
        from repro.bench.history import render_live_section

        jobs = tiny_jobs(mechanisms=("nop", "lrp"))
        drained_campaign(tmp_path / "c", jobs)
        section = render_live_section(str(tmp_path / "c"))
        assert "Live campaign" in section
        assert f"**{len(jobs)}/{len(jobs)}** done" in section
        assert "makespan=" in section

    def test_live_section_falls_back_to_heartbeats(self, tmp_path):
        from repro.bench.history import render_live_section

        section = render_live_section(str(tmp_path / "empty"))
        assert "Live sweep" in section
        assert "No heartbeat files" in section
