"""Formal persistency-model predicates (paper Sections 3.1 and 4.1).

These operate purely on abstract traces — no microarchitecture — and
answer "does model X allow persist order Y for execution Z?". They are
the ground truth the litmus tests compare mechanisms against:

* :func:`rp_allows` — Release Persistency: any two writes ordered by
  happens-before must persist in that order (Section 4.1).
* :func:`arp_allows` — the ARP rule only (Section 3.1):
  ``W po-> Rel sw-> Acq po-> W'  =>  W p-> W'`` plus same-address
  program order (persist buffers cannot reorder same-word persists of
  one thread).

A *persist sequence* is the order in which write events became durable;
writes absent from the sequence had not persisted at the crash.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.consistency.events import MemoryEvent, Trace
from repro.consistency.happens_before import HappensBefore


def _positions(persist_sequence: Sequence[int]) -> Dict[int, int]:
    positions: Dict[int, int] = {}
    for index, event_id in enumerate(persist_sequence):
        if event_id in positions:
            raise ValueError(f"event {event_id} persisted twice")
        positions[event_id] = index
    return positions


def _pair_respected(positions: Dict[int, int], first: int,
                    second: int) -> bool:
    """first must not be missing/later while second persisted."""
    if second not in positions:
        return True
    return first in positions and positions[first] < positions[second]


def rp_allows(trace: Trace, persist_sequence: Sequence[int],
              hb: HappensBefore = None) -> bool:
    """Does Release Persistency allow this persist sequence?"""
    hb = hb or HappensBefore.from_trace(trace, mode="rp")
    positions = _positions(persist_sequence)
    for earlier, later in hb.write_pairs():
        if not _pair_respected(positions, earlier.event_id,
                               later.event_id):
            return False
    return True


def arp_pairs(trace: Trace) -> Set[Tuple[int, int]]:
    """All write pairs the ARP rule orders, as (earlier, later) ids."""
    events = trace.events
    pairs: Set[Tuple[int, int]] = set()

    # Same-address program order.
    last_write: Dict[Tuple[int, int], int] = {}
    for event in events:
        if not event.is_write_effect:
            continue
        key = (event.thread_id, event.addr)
        if key in last_write:
            pairs.add((last_write[key], event.event_id))
        last_write[key] = event.event_id

    # W po-> Rel sw-> Acq po-> W'.
    for acq in events:
        if not acq.is_acquire or acq.reads_from is None:
            continue
        rel = events[acq.reads_from]
        if not rel.is_release or rel.thread_id == acq.thread_id:
            continue
        before = [e.event_id for e in events
                  if e.thread_id == rel.thread_id and e.is_write_effect
                  and e.event_id < rel.event_id]
        after = [e.event_id for e in events
                 if e.thread_id == acq.thread_id and e.is_write_effect
                 and e.event_id > acq.event_id]
        for w_before in before:
            for w_after in after:
                pairs.add((w_before, w_after))
    return pairs


def arp_allows(trace: Trace, persist_sequence: Sequence[int]) -> bool:
    """Does the ARP rule allow this persist sequence?"""
    positions = _positions(persist_sequence)
    return all(_pair_respected(positions, first, second)
               for first, second in arp_pairs(trace))


def persist_sequence_from_log(trace: Trace,
                              log_word_events: Iterable[Dict[int, int]]
                              ) -> List[int]:
    """Derive a write-event persist sequence from per-record word maps.

    Each element of ``log_word_events`` is one persist record's
    word -> store-event map, in durability order; a write persists the
    first time its id appears.
    """
    seen: Set[int] = set()
    sequence: List[int] = []
    for word_events in log_word_events:
        for event_id in sorted(word_events.values()):
            if event_id not in seen:
                seen.add(event_id)
                sequence.append(event_id)
    return sequence
