"""Progress reporting for experiment sweeps.

The runner drives one :class:`ProgressReporter` per ``run()`` call.
Reporting goes to stderr so figure output on stdout stays clean; the
silent :class:`NullProgress` is the default for library/pytest use.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Optional


class NullProgress:
    """No-op reporter (keeps the runner free of None checks)."""

    def start(self, total: int, label: str = "") -> None:
        pass

    def job_done(self, label: str, *, cached: bool) -> None:
        pass

    def finish(self) -> None:
        pass


class ProgressReporter(NullProgress):
    """Single-line progress counter: ``[exp] 12/45 (7 cached) label``."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0
        self.cached = 0
        self.label = ""
        self._started_at = 0.0

    def start(self, total: int, label: str = "") -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.label = label
        self._started_at = time.monotonic()
        self._emit("")

    def job_done(self, label: str, *, cached: bool) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        self._emit(label)

    def finish(self) -> None:
        elapsed = time.monotonic() - self._started_at
        self._emit(f"done in {elapsed:.1f}s")
        self.stream.write("\n")
        self.stream.flush()

    def _width(self) -> int:
        """Columns of the attached terminal, or 80 when undetectable."""
        try:
            return os.get_terminal_size(self.stream.fileno()).columns
        except (AttributeError, ValueError, OSError):
            return 80

    def _emit(self, detail: str) -> None:
        head = f"[exp{': ' + self.label if self.label else ''}]"
        line = f"{head} {self.done}/{self.total}"
        if self.cached:
            line += f" ({self.cached} cached)"
        if detail:
            line += f" {detail}"
        # Clip to the terminal so a long job label cannot wrap (which
        # would break the \r rewrite), and pad to clear leftovers of a
        # longer previous line. The last column stays free: writing it
        # makes some terminals wrap anyway.
        width = max(1, self._width() - 1)
        self.stream.write(f"\r{line[:width]:<{width}}")
        self.stream.flush()


class WatchRenderer(ProgressReporter):
    """Multi-line live block renderer for ``repro.exp --watch``.

    Reuses the reporter's terminal-width clipping and keeps rewriting
    a block of lines in place: each refresh moves the cursor back to
    the top of the previous block (ANSI ``CPL``) and overwrites it,
    padding every line so leftovers of longer previous lines are
    cleared. On a dumb pipe the escape does nothing and refreshes
    simply append — still readable, never corrupted.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        super().__init__(stream)
        self._prev_lines = 0

    def render_block(self, lines: list) -> None:
        width = max(1, self._width() - 1)
        out = []
        if self._prev_lines and self.stream.isatty():
            out.append(f"\x1b[{self._prev_lines}F")
        for line in lines:
            out.append(f"{line[:width]:<{width}}\n")
        self.stream.write("".join(out))
        self.stream.flush()
        self._prev_lines = len(lines)
