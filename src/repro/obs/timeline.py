"""Cycle-windowed time-series telemetry (the obs timeline).

The aggregate metrics of :mod:`repro.obs.metrics` answer *how much* of
a run went where; the paper's argument is also about *when* — LRP wins
because persist stalls are moved off the critical path over time, not
merely reduced in total. The :class:`TimelineSampler` adds that time
axis: instrumented components attribute quantities to fixed-width
cycle windows (``window = ts // interval``), producing per-window
series such as

* ``compute.c<i>`` / ``mem.c<i>`` / ``stall.c<i>`` — per-core cycles
  spent computing, in the memory system, and blocked on persist acks
  (coherence time is derived as ``mem - stall``);
* ``pqdepth.c<i>`` — persist-queue depth (in-flight line persists of
  core *i*'s writes), sampled as a per-window maximum;
* ``lrp.ret.c<i>`` — LRP Release Epoch Table occupancy (max);
* ``bb.epoch_drains.c<i>`` / ``lrp.engine.c<i>`` — epoch-drain /
  persist-engine invocations per window;
* ``nvm.lines.ch<j>`` — line persists issued per NVM channel per
  window (multiply by the line size for write bandwidth).

Like the metrics registry, the sampler serializes to plain dicts of
ints (losslessly picklable into a
:class:`~repro.exp.runner.RunSummary`, so it travels through worker
processes and the result cache) and merges across runs of a sweep.
Sampling is **off by default**: the ``Observer`` only creates a
sampler when given a ``timeline_interval``, and every hook site is
guarded, so disabled runs pay nothing and enabled runs are
bit-identical (the hooks only read simulator state).

Rendering: ASCII sparklines (:func:`render_timeline`), CSV export
(:func:`write_timeline_csv`), and Chrome trace-event *counter* tracks
(:func:`chrome_counter_events`) that Perfetto draws as stacked series
alongside the op spans of :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import csv
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple

#: Eight-level block characters used by the sparkline renderer.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _natural_key(name: str) -> Tuple[str, int, str]:
    """Sort key ordering a trailing digit run numerically.

    Series names embed core/channel ids as suffixes (``compute.c10``,
    ``nvm.lines.ch2``); plain string sort puts ``c10`` before ``c2``,
    scrambling the CSV column order between runs of different core
    counts. Splitting off the trailing integer restores numeric order
    while leaving purely textual names in plain string order.
    """
    head = name.rstrip("0123456789")
    digits = name[len(head):]
    return (head, int(digits) if digits else -1, name)

#: (series prefix, human label, kind) for the standard display groups.
#: ``sum`` series accumulate per window; ``max`` series are gauges.
DISPLAY_GROUPS: Tuple[Tuple[str, str, str], ...] = (
    ("compute.c", "compute cycles", "sum"),
    ("mem.c", "memory cycles", "sum"),
    ("stall.c", "persist-stall cycles", "sum"),
    ("pqdepth.c", "persist-queue depth (max)", "max"),
    ("lrp.ret.c", "RET occupancy (max)", "max"),
    ("bb.epoch_drains.c", "BB epoch drains", "sum"),
    ("lrp.engine.c", "LRP engine runs", "sum"),
    ("nvm.lines.ch", "NVM line persists", "sum"),
)


class TimelineSampler:
    """Accumulates per-window series for one run.

    Two series kinds share the flat name space of the metrics registry:

    * **sum** series (:meth:`tick`) — values add up within a window
      (cycles, event counts);
    * **max** series (:meth:`gauge`) — the window keeps the largest
      sampled value (queue depths, table occupancies).

    Windows are sparse dicts ``{window index: value}``; untouched
    windows are implicitly zero.
    """

    __slots__ = ("interval", "series", "gauges")

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError(
                f"timeline interval must be >= 1 cycle, got {interval}")
        self.interval = interval
        self.series: Dict[str, Dict[int, int]] = {}
        self.gauges: Dict[str, Dict[int, int]] = {}

    # -- recording -----------------------------------------------------

    def tick(self, name: str, ts: int, value: int = 1) -> None:
        """Add ``value`` into the window containing cycle ``ts``."""
        window = ts // self.interval
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = {}
        series[window] = series.get(window, 0) + value

    def gauge(self, name: str, ts: int, value: int) -> None:
        """Record ``value`` as a per-window maximum at cycle ``ts``."""
        window = ts // self.interval
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = {}
        if value > series.get(window, -1):
            series[window] = value

    # -- reading -------------------------------------------------------

    def last_window(self) -> int:
        """Index of the latest touched window (-1 when empty)."""
        last = -1
        for store in (self.series, self.gauges):
            for windows in store.values():
                if windows:
                    last = max(last, max(windows))
        return last

    def num_windows(self) -> int:
        return self.last_window() + 1

    def names(self) -> List[str]:
        """All series names (sum and max), in natural sort order.

        Trailing-digit runs compare numerically, so per-core and
        per-channel series order as ``c2 < c10`` (not the lexicographic
        ``c10 < c2``) — the stable, documented column order of the CSV
        export, line-comparable across runs of any core count.
        """
        return sorted(set(self.series) | set(self.gauges),
                      key=_natural_key)

    def dense(self, name: str,
              num_windows: Optional[int] = None) -> List[int]:
        """The series as a zero-filled list over ``[0, num_windows)``."""
        windows = self.series.get(name) or self.gauges.get(name) or {}
        length = self.num_windows() if num_windows is None else num_windows
        values = [0] * length
        for window, value in windows.items():
            if 0 <= window < length:
                values[window] = value
        return values

    def grouped(self, prefix: str, kind: str = "sum",
                num_windows: Optional[int] = None) -> List[int]:
        """Aggregate all series sharing ``prefix`` into one dense list.

        ``sum`` series add across e.g. cores; ``max`` series take the
        per-window maximum (a fleet-wide high-water mark).
        """
        length = self.num_windows() if num_windows is None else num_windows
        combined = [0] * length
        store = self.series if kind == "sum" else self.gauges
        for name in store:
            if not name.startswith(prefix):
                continue
            for index, value in enumerate(self.dense(name, length)):
                if kind == "sum":
                    combined[index] += value
                elif value > combined[index]:
                    combined[index] = value
        return combined

    # -- (de)serialization and merging ---------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "series": {
                name: {str(w): v for w, v in sorted(windows.items())}
                for name, windows in sorted(self.series.items())
            },
            "gauges": {
                name: {str(w): v for w, v in sorted(windows.items())}
                for name, windows in sorted(self.gauges.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TimelineSampler":
        sampler = cls(int(data["interval"]))  # type: ignore[arg-type]
        for attr in ("series", "gauges"):
            store = getattr(sampler, attr)
            for name, windows in data.get(attr, {}).items():  # type: ignore
                store[name] = {int(w): int(v) for w, v in windows.items()}
        return sampler

    def merge(self, other: "TimelineSampler") -> None:
        """Fold another sampler in (sweep-level aggregation).

        Both samplers must share the window width — summing windows of
        different widths would silently misalign the time axis.
        """
        if other.interval != self.interval:
            raise ValueError(
                f"cannot merge timelines with different intervals "
                f"({self.interval} vs {other.interval})")
        for name, windows in other.series.items():
            mine = self.series.setdefault(name, {})
            for window, value in windows.items():
                mine[window] = mine.get(window, 0) + value
        for name, windows in other.gauges.items():
            mine = self.gauges.setdefault(name, {})
            for window, value in windows.items():
                if value > mine.get(window, -1):
                    mine[window] = value


def merged_timelines(dicts: Iterable[Dict[str, object]]
                     ) -> Optional[TimelineSampler]:
    """Merge serialized samplers (e.g. from many runs of a sweep)."""
    result: Optional[TimelineSampler] = None
    for data in dicts:
        sampler = TimelineSampler.from_dict(data)
        if result is None:
            result = sampler
        else:
            result.merge(sampler)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def sparkline(values: Sequence[int], width: int = 72) -> str:
    """Eight-level block rendering of a series, downsampled to fit.

    Downsampling buckets adjacent windows by *maximum* so short spikes
    stay visible. An all-zero series renders as a flat baseline.
    """
    if not values:
        return ""
    if len(values) > width:
        bucketed: List[int] = []
        for index in range(width):
            lo = index * len(values) // width
            hi = max(lo + 1, (index + 1) * len(values) // width)
            bucketed.append(max(values[lo:hi]))
        values = bucketed
    peak = max(values)
    if peak <= 0:
        return SPARK_BLOCKS[0] * len(values)
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[0] if v <= 0
        else SPARK_BLOCKS[1 + (v * (top - 1)) // peak]
        for v in values)


def coherence_series(sampler: TimelineSampler,
                     num_windows: Optional[int] = None) -> List[int]:
    """Per-window coherence cycles: memory time minus persist stalls.

    A stall charged near a window boundary can land one window after
    its op's memory time, so single windows may dip below zero; those
    are clamped for display (the run-total attribution in
    :mod:`repro.obs.report` stays exact).
    """
    length = sampler.num_windows() if num_windows is None else num_windows
    mem = sampler.grouped("mem.c", "sum", length)
    stall = sampler.grouped("stall.c", "sum", length)
    return [max(0, m - s) for m, s in zip(mem, stall)]


def render_timeline(sampler: TimelineSampler, *,
                    title: Optional[str] = None,
                    width: int = 72) -> str:
    """Sparkline dashboard over the standard display groups."""
    length = sampler.num_windows()
    lines = []
    if title:
        lines.extend([title, "-" * len(title)])
    lines.append(
        f"{length} windows x {sampler.interval} cycles "
        f"(time runs left to right)")
    rows: List[Tuple[str, List[int]]] = []
    for prefix, label, kind in DISPLAY_GROUPS:
        values = sampler.grouped(prefix, kind, length)
        if any(values):
            rows.append((label, values))
    coherence = coherence_series(sampler, length)
    if any(coherence):
        # Keep the three makespan shares adjacent in the output.
        insert_at = next(
            (i + 1 for i, (label, _) in enumerate(rows)
             if label == "memory cycles"), len(rows))
        rows.insert(insert_at, ("coherence cycles (mem-stall)", coherence))
    if not rows:
        lines.append("(no samples recorded)")
        return "\n".join(lines)
    label_width = max(len(label) for label, _ in rows)
    for label, values in rows:
        lines.append(f"{label:<{label_width}}  "
                     f"{sparkline(values, width)}  peak={max(values)}")
    return "\n".join(lines)


def write_timeline_csv(sampler: TimelineSampler,
                       destination: IO[str]) -> int:
    """Dump every raw series as CSV (one row per window); row count.

    Columns: ``window``, ``start_cycle``, then every series (sum and
    max) by name in natural sort order (digit runs compare
    numerically, so ``compute.c2`` precedes ``compute.c10``) — the
    full per-core resolution, not the aggregated display groups, in a
    stable order so CSVs of different runs diff line-for-line.
    """
    names = sampler.names()
    length = sampler.num_windows()
    columns = {name: sampler.dense(name, length) for name in names}
    writer = csv.writer(destination)
    writer.writerow(["window", "start_cycle"] + names)
    for window in range(length):
        writer.writerow([window, window * sampler.interval]
                        + [columns[name][window] for name in names])
    return length


# ----------------------------------------------------------------------
# Chrome trace-event counter tracks
# ----------------------------------------------------------------------

#: pid of the timeline counter process in exported Chrome traces (the
#: span tracks of repro.obs.trace use pids 1-4 and 9).
COUNTER_PID = 5


def chrome_counter_events(sampler: TimelineSampler) -> List[dict]:
    """Counter events (phase ``C``) for every timeline series.

    Perfetto / ``chrome://tracing`` render counters as per-track area
    charts, so stall pressure, queue depth and NVM bandwidth evolve
    visually alongside the op spans. Metadata events name the process
    and one thread per series; data events are emitted per touched
    window, sorted by ``(tid, ts)`` so each track's timestamps are
    monotone. A zero sample is appended after a series' final window so
    counters drop back to the baseline instead of painting to infinity.
    """
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": COUNTER_PID, "tid": 0,
        "args": {"name": "timeline counters"},
    }]
    data: List[dict] = []
    for tid, name in enumerate(sampler.names(), start=1):
        events.append({"name": "thread_name", "ph": "M",
                       "pid": COUNTER_PID, "tid": tid,
                       "args": {"name": name}})
        windows = sampler.series.get(name) or sampler.gauges.get(name) or {}
        last = -1
        for window in sorted(windows):
            data.append({"name": name, "ph": "C", "cat": "timeline",
                         "ts": window * sampler.interval,
                         "pid": COUNTER_PID, "tid": tid,
                         "args": {"value": windows[window]}})
            last = window
        if last >= 0:
            data.append({"name": name, "ph": "C", "cat": "timeline",
                         "ts": (last + 1) * sampler.interval,
                         "pid": COUNTER_PID, "tid": tid,
                         "args": {"value": 0}})
    data.sort(key=lambda e: (e["tid"], e["ts"]))
    return events + data
