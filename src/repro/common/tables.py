"""Flat integer tables backing the coherence hot-path state.

The simulation hot path indexes L1 line state and directory
owner/sharer state millions of times per run. Dict-of-dataclass
storage pays an attribute lookup plus hashing per access; the tables
here keep that state in flat ``array`` buffers indexed by a dense id,
so the batch engine (:mod:`repro.core.fastsim`) reads plain C-backed
slots, and bulk passes can use zero-copy numpy views when numpy is
installed.

numpy is strictly optional (the ``fast`` extra in pyproject.toml):
every consumer falls back to the pure-``array`` path, and the
equivalence tests pin that both paths produce bit-identical results.
Set ``REPRO_NO_NUMPY=1`` to force the fallback (used by the tests and
the profiling harness).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional

try:  # pragma: no cover - exercised via both CI legs
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None


def numpy_or_none():
    """The numpy module when available and not disabled, else None."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    return _numpy


class LineIdMap:
    """Dense interning of line addresses -> small integer line ids.

    The directory's flat tables are indexed by these ids; the map is
    append-only (lines are never forgotten), so an id stays valid for
    the lifetime of the fabric.
    """

    __slots__ = ("index", "addrs")

    def __init__(self) -> None:
        self.index: Dict[int, int] = {}
        self.addrs: List[int] = []

    def __len__(self) -> int:
        return len(self.addrs)

    def get(self, line_addr: int) -> Optional[int]:
        """The line's id, or None if it was never seen."""
        return self.index.get(line_addr)

    def intern(self, line_addr: int) -> int:
        """The line's id, allocating one on first sight."""
        lid = self.index.get(line_addr)
        if lid is None:
            lid = len(self.addrs)
            self.index[line_addr] = lid
            self.addrs.append(line_addr)
        return lid


class IntTable:
    """A growable flat signed-integer table (``array``-backed).

    ``ensure(n)`` grows the table to at least ``n`` entries, filling
    new slots with the table's fill value. ``as_numpy()`` returns a
    zero-copy numpy view of the current buffer (or None without
    numpy); the view is only valid until the next growth.
    """

    __slots__ = ("data", "fill")

    def __init__(self, typecode: str = "q", fill: int = 0) -> None:
        self.data = array(typecode)
        self.fill = fill

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> int:
        return self.data[index]

    def __setitem__(self, index: int, value: int) -> None:
        self.data[index] = value

    def ensure(self, size: int) -> None:
        grow = size - len(self.data)
        if grow > 0:
            self.data.extend([self.fill] * grow)

    def as_numpy(self):
        np = numpy_or_none()
        if np is None or not len(self.data):
            return None
        return np.frombuffer(self.data, dtype=self.data.typecode)
