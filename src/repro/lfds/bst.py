"""``bstree_tomb``: a lock-free BST with tombstone deletion.

A lock-free internal BST where the tree only grows; deletion
release-CASes a per-node ``alive`` word to 0 (the linearization
point), and re-insertion of the same key resurrects the node (value
store, then release-CAS of ``alive`` back to 1). It preserves the
persistency pattern under study — prepare node fields with plain
stores, publish with a single release-CAS (of a child link or of the
``alive`` word) — with far fewer writes per update than the
Natarajan–Mittal external tree (:mod:`repro.lfds.nmbst`, the paper's
actual ``bstree`` workload); the write-intensity ablation benchmark
contrasts the two.

Annotations: child-link and ``alive`` loads during traversal are
acquires; the publishing CASes are releases; field initialization is
plain — the same DRF discipline as the other LFDs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.consistency.events import MemOrder
from repro.core.thread import cas, load, store
from repro.lfds.base import (
    LogFreeStructure,
    NULL,
    OpGen,
    RecoveryReport,
    Word,
    alloc_header_write,
    field,
    header_addr,
)
from repro.memory.address import WORD_BYTES, HeapAllocator

# Node layout: [key, value, left, right, alive]
KEY, VALUE, LEFT, RIGHT, ALIVE = 0, 1, 2, 3, 4
NODE_WORDS = 5


class BinarySearchTree(LogFreeStructure):
    """Lock-free internal BST with tombstone deletes.

    A simpler alternative to the Natarajan-Mittal external tree
    (:class:`repro.lfds.nmbst.NMTree`, the paper's actual ``bstree``
    workload): kept as the ``bstree_tomb`` variant — useful as a
    low-write-intensity contrast in ablations and as a second tree
    shape for the correctness suites.
    """

    name = "bstree_tomb"

    def __init__(self, allocator: HeapAllocator,
                 max_nodes: int = 1 << 22) -> None:
        super().__init__(allocator)
        self.root_ptr = allocator.alloc(1, line_align=True)
        self._max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Traversal: find the node with `key`, or the null link to extend.
    # ------------------------------------------------------------------

    def _locate(self, key: int) -> OpGen:
        """Returns ``(node, link_ptr)``: ``node`` holding ``key`` (and
        then link_ptr is None), or NULL with the child-link address
        where ``key`` would attach."""
        link_ptr = self.root_ptr
        node = yield load(link_ptr, MemOrder.ACQUIRE)
        while node not in (NULL, None):
            node_key = yield load(field(node, KEY))
            if node_key == key:
                return node, None
            link_ptr = field(node, LEFT if key < node_key else RIGHT)
            node = yield load(link_ptr, MemOrder.ACQUIRE)
        return NULL, link_ptr

    def insert(self, key: int, value: int, tid=None) -> OpGen:
        while True:
            node, link_ptr = yield from self._locate(key)
            if node != NULL:
                alive = yield load(field(node, ALIVE), MemOrder.ACQUIRE)
                if alive == 1:
                    return False
                # Resurrect the tombstone: value first, then publish.
                yield store(field(node, VALUE), value)
                ok, _ = yield cas(field(node, ALIVE), 0, 1,
                                  MemOrder.RELEASE)
                if ok:
                    return True
                continue  # lost the race: re-examine
            fresh = self._alloc_node(NODE_WORDS, tid)
            yield alloc_header_write(fresh, NODE_WORDS)
            yield store(field(fresh, KEY), key)
            yield store(field(fresh, VALUE), value)
            yield store(field(fresh, LEFT), NULL)
            yield store(field(fresh, RIGHT), NULL)
            yield store(field(fresh, ALIVE), 1)
            ok, _ = yield cas(link_ptr, NULL, fresh, MemOrder.RELEASE)
            if ok:
                return True
            # Someone attached a node here first: re-descend.

    def delete(self, key: int) -> OpGen:
        while True:
            node, _link_ptr = yield from self._locate(key)
            if node == NULL:
                return False
            alive = yield load(field(node, ALIVE), MemOrder.ACQUIRE)
            if alive != 1:
                return False
            ok, _ = yield cas(field(node, ALIVE), 1, 0, MemOrder.RELEASE)
            if ok:
                return True
            # The alive word changed under us: re-examine.

    def contains(self, key: int) -> OpGen:
        node, _link_ptr = yield from self._locate(key)
        if node == NULL:
            return False
        alive = yield load(field(node, ALIVE), MemOrder.ACQUIRE)
        return alive == 1

    # ------------------------------------------------------------------
    # Direct-memory build: balanced tree over the sorted initial keys.
    # ------------------------------------------------------------------

    def build_initial(self, keys: Iterable[int],
                      memory: Dict[int, Word]) -> None:
        sorted_keys = sorted(set(keys))
        memory[self.root_ptr] = self._build_balanced(sorted_keys, memory)

    def _build_balanced(self, keys: Sequence[int],
                        memory: Dict[int, Word]) -> int:
        if not keys:
            return NULL
        mid = len(keys) // 2
        node = self.allocator.alloc(NODE_WORDS + 1, line_align=True) + 8
        memory[header_addr(node)] = NODE_WORDS
        memory[field(node, KEY)] = keys[mid]
        memory[field(node, VALUE)] = keys[mid] + 1
        memory[field(node, LEFT)] = self._build_balanced(keys[:mid], memory)
        memory[field(node, RIGHT)] = self._build_balanced(keys[mid + 1:],
                                                          memory)
        memory[field(node, ALIVE)] = 1
        return node

    # ------------------------------------------------------------------
    # Recovery validation
    # ------------------------------------------------------------------

    def validate_image(self, image: Dict[int, Word]) -> RecoveryReport:
        problems: List[str] = []
        live: Set[int] = set()
        count = 0
        root = image.get(self.root_ptr)
        if root is None:
            problems.append(f"root pointer {self.root_ptr:#x} not in NVM")
            root = NULL
        stack: List[Tuple[int, int, int]] = []
        if root != NULL:
            stack.append((root, -(1 << 63), 1 << 63))
        while stack and not problems:
            node, low, high = stack.pop()
            count += 1
            if count > self._max_nodes:
                problems.append("tree exceeds node bound (cycle?)")
                break
            key = image.get(field(node, KEY))
            value = image.get(field(node, VALUE))
            left = image.get(field(node, LEFT))
            right = image.get(field(node, RIGHT))
            alive = image.get(field(node, ALIVE))
            if None in (key, value, left, right, alive):
                problems.append(
                    f"node {node:#x} is linked into the tree but its "
                    "fields never persisted (inconsistent cut)")
                break
            if not low < key < high:
                problems.append(
                    f"BST ordering violated at node {node:#x} "
                    f"(key {key} outside ({low}, {high}))")
            if alive not in (0, 1):
                problems.append(f"node {node:#x} alive word is {alive}")
            if alive == 1:
                live.add(key)
            if left != NULL:
                stack.append((left, low, key))
            if right != NULL:
                stack.append((right, key, high))
        return RecoveryReport(structure=self.name, ok=not problems,
                              problems=problems, reachable_nodes=count,
                              live_keys=live)

    def collect_keys(self, memory: Dict[int, Word]) -> Set[int]:
        return self.validate_image(memory).live_keys or set()
