"""Execution core: machine, scheduler, simulator, crash recovery."""

from repro.core.machine import Machine
from repro.core.recovery import (
    CrashCampaign,
    CrashOutcome,
    crash_points,
    crash_test,
    exhaustive_crash_test,
)
from repro.core.replay import (
    ContinuationResult,
    RecoveryReplayError,
    continuation_sweep,
    recover_and_continue,
)
from repro.core.scheduler import Scheduler, SimThread
from repro.core.simulator import (
    SimulationResult,
    simulate,
    simulate_all_mechanisms,
)
from repro.core.thread import Op, OpKind, cas, load, store, work, xchg

__all__ = [
    "Machine",
    "CrashCampaign",
    "CrashOutcome",
    "crash_points",
    "crash_test",
    "exhaustive_crash_test",
    "ContinuationResult",
    "RecoveryReplayError",
    "continuation_sweep",
    "recover_and_continue",
    "Scheduler",
    "SimThread",
    "SimulationResult",
    "simulate",
    "simulate_all_mechanisms",
    "Op",
    "OpKind",
    "cas",
    "load",
    "store",
    "work",
    "xchg",
]
