"""Behavioural coverage map for the persistency fuzzer.

Uniform crash sampling misses rare interleaving x crash-point bugs
because it has no notion of whether a mutated run *did anything new*.
This module gives the fuzzer that signal: a :class:`CoverageMap` is a
set of **features** harvested from the (opt-in, bit-identical)
:class:`~repro.obs.Observer` export of a run —

* ``persist`` features — one per observed ``(trigger, site)`` pair of
  the provenance capture (which coherence/persistency event persisted
  which workload step's line);
* ``stall`` features — one per ``(reason, site)`` stall charge pair;
* ``coh`` features — the coherence transitions the metrics layer
  counts (downgrades, dirty downgrades, evictions, invalidations);
* ``edge`` features — release->acquire happens-before edges enforced
  by coherence-triggered persists, by (owner, requester) core pair;
* ``order`` features — adjacent ``site -> site`` pairs in the global
  persist order (provenance entries by seq). Persist *order* is the
  consistent-cut structure itself, so a schedule perturbation that
  reorders persists — exactly the kind of run crash-point fuzzing
  wants to crash inside — earns new coverage even when every
  per-site count stays in the same bucket.

Each feature carries an AFL-style bucketed count (1, 2, 3, 4-7, 8-15,
... power-of-two buckets): revisiting a behaviour *much more often*
still counts as new coverage once per bucket, while jitter inside a
bucket does not. Maps merge; ``merge`` returns how many features were
new, which is the fuzzer's "keep this input" decision.

Serialization is a sorted list of feature strings — deterministic, so
campaign corpora are bit-identical for a given seed, and small enough
to ride in ``RunSummary.obs["coverage"]`` through worker processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Metrics counters harvested as coherence-transition features.
_COH_COUNTERS = (
    "coh.downgrades",
    "coh.downgrades_dirty",
    "coh.evictions",
    "coh.evictions_dirty",
    "coh.invalidations",
)


def bucket(count: int) -> int:
    """AFL-style count bucket: 0, 1, 2, 3, then powers of two."""
    if count <= 3:
        return max(count, 0)
    return 1 << (count.bit_length() - 1)


class CoverageMap:
    """A mergeable set of bucketed behaviour features."""

    __slots__ = ("_features",)

    def __init__(self, features: Optional[Iterable[str]] = None) -> None:
        self._features = set(features or ())

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, feature: str) -> bool:
        return feature in self._features

    def add_count(self, kind: str, *parts: object, count: int = 1) -> None:
        """Record one feature with its bucketed count."""
        if count <= 0:
            return
        key = "|".join(str(part) for part in parts)
        self._features.add(f"{kind}|{key}|b{bucket(count)}")

    def merge(self, other: "CoverageMap") -> int:
        """Union ``other`` in; returns the number of new features."""
        new = other._features - self._features
        self._features |= new
        return len(new)

    def new_features(self, other: "CoverageMap") -> int:
        """How many of ``other``'s features this map lacks (read-only)."""
        return len(other._features - self._features)

    # -- (de)serialization --------------------------------------------

    def to_list(self) -> List[str]:
        """Deterministic serialized form (sorted feature strings)."""
        return sorted(self._features)

    @classmethod
    def from_list(cls, features: Iterable[str]) -> "CoverageMap":
        return cls(features)


def coverage_from_obs(export: Dict[str, object]) -> CoverageMap:
    """Build a run's coverage map from an ``Observer.export()`` dump.

    Uses whatever layers the export carries: metrics counters always,
    provenance persist/stall/edge features when the run collected
    provenance (the fuzzer always does).
    """
    cov = CoverageMap()
    metrics = export.get("metrics") or {}
    counters = metrics.get("counters", {}) if isinstance(metrics, dict) \
        else {}
    for name in _COH_COUNTERS:
        cov.add_count("coh", name, count=int(counters.get(name, 0)))

    provenance = export.get("provenance")
    if isinstance(provenance, dict):
        persist_counts: Dict[Tuple[str, str], int] = {}
        edge_counts: Dict[Tuple[str, int, int], int] = {}
        order_counts: Dict[Tuple[str, str], int] = {}
        previous_site: Optional[str] = None
        for entry in sorted(provenance.get("persists", ()),
                            key=lambda e: int(e["seq"])):
            key = (str(entry["trigger"]), str(entry["site"]))
            persist_counts[key] = persist_counts.get(key, 0) + 1
            edge = entry.get("edge")
            if edge is not None:
                ekey = (str(entry["trigger"]), int(edge[0]), int(edge[1]))
                edge_counts[ekey] = edge_counts.get(ekey, 0) + 1
            site = str(entry["site"])
            if previous_site is not None and previous_site != site:
                okey = (previous_site, site)
                order_counts[okey] = order_counts.get(okey, 0) + 1
            previous_site = site
        for (trigger, site), count in persist_counts.items():
            cov.add_count("persist", trigger, site, count=count)
        for (before, after), count in order_counts.items():
            cov.add_count("order", before, after, count=count)
        for (trigger, owner, requester), count in edge_counts.items():
            cov.add_count("edge", trigger, owner, requester, count=count)
        for site, reason, _cycles, count in provenance.get("stalls", ()):
            cov.add_count("stall", reason, site, count=int(count))
    return cov
