"""Shared configuration, statistics and RNG utilities."""

from repro.common.params import DEFAULT_CONFIG, MachineConfig, NVMMode
from repro.common.stats import CoreStats, RunStats, merge_core_stats
from repro.common.rng import make_rng, weighted_choice

__all__ = [
    "DEFAULT_CONFIG",
    "MachineConfig",
    "NVMMode",
    "CoreStats",
    "RunStats",
    "merge_core_stats",
    "make_rng",
    "weighted_choice",
]
