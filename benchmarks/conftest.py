"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the measured quantity is the wall time of regenerating one
paper figure at the quick scale, and the benchmark's ``extra_info``
carries the figure's own numbers (normalized execution times,
percentages) for inspection in the saved benchmark JSON.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
