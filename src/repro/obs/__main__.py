"""``python -m repro.obs`` — tracing, attribution, and self-test.

Subcommands:

* ``trace out.json`` — run one small simulation with full tracing and
  write a ``chrome://tracing`` / Perfetto-loadable trace-event file;
* ``report`` — run one workload under several mechanisms and print the
  critical-path attribution report (the textual explanation of the
  paper's Figures 5-8: where each mechanism's makespan goes);
* ``timeline`` — run with cycle-windowed sampling and render the
  per-window compute/coherence/stall shares, queue depths and NVM
  bandwidth as ASCII sparklines (``--csv`` for the raw series,
  ``--trace-out`` for Perfetto counter tracks);
* ``audit`` — re-verify the persist order and consistent-cut
  guarantees of a finished run against the RP model (zero violations
  expected for the enforcing mechanisms, nonzero for nop/ARP);
* ``provenance`` — run with persist-provenance tracking and write the
  capture (causal chain per persist/stall) as JSON, for later ``flame``
  / ``diff`` rendering;
* ``flame`` — collapse a provenance capture (or a fresh run) into
  Brendan-Gregg folded stacks (``site;trigger;mechanism value``),
  loadable in speedscope / flamegraph.pl, plus an ASCII top-N table;
* ``diff`` — align two same-workload/seed captures across mechanisms
  and report first divergence, per-site deltas, and persists
  avoided-vs-moved;
* ``fastsmoke`` — gate the batched engine's telemetry: one paper-scale
  cell plain vs observed (interleaved min-of-N wall times), makespan
  identity, exact fast-vs-reference reconciliation across the full
  mechanism matrix, overhead bounded by ``--overhead-limit``; writes
  ``BENCH_obsfast.json``;
* ``slo`` — run the KV-service workload with request-span tracking and
  print the service report: throughput, exact p50/p99/p999 request and
  durable latency, windowed sparklines, optional crash-RTO table
  (``--crash-points``), per-request CSV (``--csv``), request spans as
  a Chrome trace (``--trace-out``) and the JSON payload
  (``--json-out``);
* ``kvsmoke`` — gate the span-tracking overhead on the KV service:
  ABBA rounds plain vs spans-on (makespans must be identical and the
  batch engine engaged), streaming-vs-exact percentile reconciliation,
  reference-vs-fast span lane equality, SLO payloads for lrp/bb/sb;
  writes ``BENCH_kv.json``;
* ``--selftest`` — end-to-end check on a tiny workload: obs hooks
  disabled vs. enabled yield bit-identical runs, the trace export
  round-trips through ``json`` with monotone per-track timestamps, the
  attribution reconciles exactly with ``RunStats``, the timeline's
  window sums reconcile with the aggregate counters, and the
  provenance flamegraph's stall cycles reconcile exactly with
  ``persist_stall_cycles``.

CLI failures (unknown mechanism, unwritable output path, export
without the requested data) exit 1 with a one-line diagnostic; missing
parent directories of an output path are created.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional, Sequence, Tuple

from repro.common.params import MachineConfig, NVMMode
from repro.core.simulator import SimulationResult, simulate
from repro.obs import (
    Observer,
    TimelineSampler,
    write_chrome_trace,
)
from repro.obs import diff as diff_mod
from repro.obs import flame
from repro.obs import slo
from repro.obs.report import (
    attribute_run,
    render_attribution,
)
from repro.obs.timeline import render_timeline, sparkline, \
    write_timeline_csv
from repro.workloads.harness import WorkloadSpec
from repro.workloads.kvservice import KVServiceSpec

SELFTEST_MECHANISMS = ("nop", "sb", "bb", "lrp")

#: The service-comparison row of the KV story: lazy release persistency
#: against the eager blocking baselines.
KV_MECHANISMS = ("lrp", "bb", "sb")

#: Every mechanism the batched-engine telemetry must reconcile against
#: the reference Observer, counter for counter and window for window.
FULL_MECHANISMS = ("nop", "sb", "bb", "arp", "dpo", "hops", "lrp")

#: Window width (cycles) used when the user does not pass --interval.
DEFAULT_TIMELINE_INTERVAL = 1000


def _ensure_parent(path: str) -> None:
    """Create an output path's parent directory if it is missing.

    All obs CLI output paths go through here (the PR 3 error-path
    contract: never a traceback — a genuinely uncreatable parent
    surfaces as OSError, which main() turns into a one-line exit 1).
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(structure=args.workload,
                        num_threads=args.threads,
                        initial_size=args.size,
                        ops_per_thread=args.ops,
                        seed=args.seed)


def _config_from_args(args: argparse.Namespace) -> MachineConfig:
    mode = NVMMode.UNCACHED if args.uncached else NVMMode.CACHED
    return MachineConfig(num_cores=max(args.threads, 1), nvm_mode=mode)


def _observed_run(spec: WorkloadSpec, mechanism: str,
                  config: MachineConfig, *, trace: bool,
                  timeline_interval: Optional[int] = None,
                  provenance: bool = False
                  ) -> Tuple[SimulationResult, Observer]:
    observer = Observer(trace=trace, timeline_interval=timeline_interval,
                        provenance=provenance)
    result = simulate(spec, mechanism, config, observer=observer)
    return result, observer


def _capture_run(spec: WorkloadSpec, mechanism: str,
                 config: MachineConfig) -> dict:
    """One provenance-tracked run, distilled into a capture dict."""
    from repro.exp.runner import Job, execute_job

    summary = execute_job(Job(spec=spec, mechanism=mechanism,
                              config=config, collect_provenance=True))
    return diff_mod.make_capture(summary)


def _add_workload_args(parser: argparse.ArgumentParser,
                       single_workload: bool = True) -> None:
    if single_workload:
        parser.add_argument("--workload", default="hashmap",
                            help="LFD to run (default: %(default)s)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--size", type=int, default=256,
                        help="initial structure size")
    parser.add_argument("--ops", type=int, default=24,
                        help="operations per thread")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--uncached", action="store_true",
                        help="uncached NVM mode (Figure 7 regime)")


def cmd_trace(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = _config_from_args(args)
    result, observer = _observed_run(spec, args.mechanism, config,
                                     trace=True)
    events = observer.trace.chrome_events()
    _ensure_parent(args.output)
    write_chrome_trace(events, args.output)
    attribution = attribute_run(result.stats, observer.metrics.counters)
    print(f"wrote {len(events)} trace events to {args.output} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    print(f"{spec.structure}/{args.mechanism}: makespan "
          f"{result.makespan} cycles, persist stalls "
          f"{attribution.persist_stall_total} cycles")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = _config_from_args(args)
    attributions = []
    for mechanism in args.mechanisms:
        result, observer = _observed_run(spec, mechanism, config,
                                         trace=False)
        attributions.append(
            attribute_run(result.stats, observer.metrics.counters))
    print(render_attribution(
        attributions,
        title=f"Critical-path attribution: {spec.structure}, "
              f"{spec.num_threads} threads, "
              f"{spec.ops_per_thread} ops/thread "
              f"({config.nvm_mode.value} NVM)"))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    if args.from_export:
        with open(args.from_export) as handle:
            document = json.load(handle)
        timeline_data = document.get("timeline")
        if timeline_data is None:
            raise ValueError(
                f"{args.from_export}: export carries no timeline series "
                f"(re-run with a timeline interval, e.g. "
                f"'python -m repro.obs timeline --export-out ...')")
        sampler = TimelineSampler.from_dict(timeline_data)
        title = f"Timeline re-rendered from {args.from_export}"
    else:
        spec = _spec_from_args(args)
        config = _config_from_args(args)
        result, observer = _observed_run(
            spec, args.mechanism, config,
            trace=args.trace_out is not None,
            timeline_interval=args.interval)
        sampler = observer.timeline
        assert sampler is not None
        title = (f"Timeline: {spec.structure}/{args.mechanism}, "
                 f"{spec.num_threads} threads, "
                 f"makespan {result.makespan} cycles")
        if args.export_out:
            _ensure_parent(args.export_out)
            with open(args.export_out, "w") as handle:
                json.dump(observer.export(), handle)
            print(f"wrote observer export to {args.export_out}")
        if args.trace_out:
            # export() appends the counter tracks to the span events.
            events = observer.export()["trace_events"]
            _ensure_parent(args.trace_out)
            write_chrome_trace(events, args.trace_out)
            print(f"wrote {len(events)} trace events (incl. counter "
                  f"tracks) to {args.trace_out}")
    print(render_timeline(sampler, title=title, width=args.width))
    if args.csv:
        _ensure_parent(args.csv)
        with open(args.csv, "w", newline="") as handle:
            rows = write_timeline_csv(sampler, handle)
        print(f"wrote {rows} windows x {len(sampler.names())} series "
              f"to {args.csv}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.obs.audit import audit_simulation

    config = _config_from_args(args)
    print(f"Persist-order audit: mechanism={args.mechanism}, "
          f"{args.threads} threads, {args.ops} ops/thread, "
          f"{args.cuts} crash cuts per run")
    failed = False
    dirty = False
    for workload in args.workloads:
        spec = WorkloadSpec(structure=workload, num_threads=args.threads,
                            initial_size=args.size,
                            ops_per_thread=args.ops, seed=args.seed)
        result = simulate(spec, args.mechanism, config)
        report = audit_simulation(result, cut_samples=args.cuts,
                                  cut_seed=args.seed)
        print(f"[audit] {report.summary()}")
        if not report.clean:
            dirty = True
            for line in report.detail_lines(args.detail):
                print(line)
        failed = failed or report.failed
    if failed:
        print("[audit] FAILED: an RP-enforcing mechanism violated the "
              "persist order")
        return 1
    if dirty and args.strict:
        print("[audit] FAILED (--strict): violations found")
        return 1
    print("[audit] PASSED")
    return 0


def cmd_provenance(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    config = _config_from_args(args)
    capture = _capture_run(spec, args.mechanism, config)
    _ensure_parent(args.output)
    diff_mod.write_capture(capture, args.output)
    prov = capture["provenance"]
    triggers: dict = {}
    for entry in prov["persists"]:
        triggers[entry["trigger"]] = triggers.get(entry["trigger"], 0) + 1
    print(f"wrote provenance capture to {args.output}")
    print(f"{spec.structure}/{args.mechanism}: "
          f"{len(prov['persists'])} persists "
          f"({', '.join(f'{t}: {n}' for t, n in sorted(triggers.items()))}), "
          f"{capture['persist_stall_cycles']} stall cycles over "
          f"{len(prov['stalls'])} (site, reason) pairs")
    return 0


def cmd_flame(args: argparse.Namespace) -> int:
    if args.from_capture:
        capture = diff_mod.load_capture(args.from_capture)
    else:
        spec = _spec_from_args(args)
        config = _config_from_args(args)
        capture = _capture_run(spec, args.mechanism, config)
    prov = capture["provenance"]
    folds = flame.collapse_stacks(prov, args.mode)
    _ensure_parent(args.output)
    flame.write_collapsed(folds, args.output)
    unit = "cycles" if args.mode == "stalls" else "persists"
    print(f"wrote {len(folds)} folded stacks ({flame.total(folds)} "
          f"{unit}) to {args.output} (feed to flamegraph.pl or "
          f"https://speedscope.app)")
    print(flame.render_table(prov, args.mode, limit=args.limit))
    if args.mode == "stalls":
        stats_total = capture["persist_stall_cycles"]
        if flame.total(folds) != stats_total:
            print(f"error: flame total {flame.total(folds)} != "
                  f"persist_stall_cycles {stats_total}", file=sys.stderr)
            return 1
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    if args.captures:
        base = diff_mod.load_capture(args.captures[0])
        other = diff_mod.load_capture(args.captures[1])
    else:
        spec = _spec_from_args(args)
        config = _config_from_args(args)
        base = _capture_run(spec, args.base, config)
        other = _capture_run(spec, args.other, config)
    result = diff_mod.diff_captures(base, other)
    if args.json_out:
        _ensure_parent(args.json_out)
        with open(args.json_out, "w") as handle:
            json.dump(result, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote machine-readable diff to {args.json_out}")
    print(diff_mod.render_diff(result, limit=args.limit))
    return 0


# ----------------------------------------------------------------------
# Fast-engine telemetry reconciliation
# ----------------------------------------------------------------------

def _engine_run(spec: WorkloadSpec, mechanism: str, config: MachineConfig,
                *, fast: bool, timeline_interval: Optional[int] = None,
                observe: bool = True) -> Tuple[SimulationResult,
                                               Optional[Observer]]:
    """One cell with the engine pinned via REPRO_FASTSIM (restored after).

    The workload setup cache is cleared on both sides of the run: cached
    machines were built for one engine's fast-path closures and must not
    leak across the pin.
    """
    from repro.core.simulator import clear_setup_cache

    previous = os.environ.get("REPRO_FASTSIM")
    os.environ["REPRO_FASTSIM"] = "1" if fast else "0"
    try:
        clear_setup_cache()
        observer = (Observer(timeline_interval=timeline_interval)
                    if observe else None)
        result = simulate(spec, mechanism, config, observer=observer)
    finally:
        if previous is None:
            os.environ.pop("REPRO_FASTSIM", None)
        else:
            os.environ["REPRO_FASTSIM"] = previous
        clear_setup_cache()
    return result, observer


def fast_telemetry_reconciles(spec: WorkloadSpec, config: MachineConfig,
                              timeline_interval: int,
                              mechanisms: Sequence[str] = FULL_MECHANISMS,
                              verbose: bool = False) -> bool:
    """Exact fast-vs-reference telemetry check across ``mechanisms``.

    For each mechanism the same cell runs once through the reference
    per-op loop and once through the batched engine, both with a
    metrics+timeline Observer attached; the makespans and the *entire*
    observer exports must match exactly, and the fast run must actually
    have taken the fast path (``fastsim_fallback is None``).
    """
    ok = True
    for mechanism in mechanisms:
        ref, ref_obs = _engine_run(spec, mechanism, config, fast=False,
                                   timeline_interval=timeline_interval)
        fst, fst_obs = _engine_run(spec, mechanism, config, fast=True,
                                   timeline_interval=timeline_interval)
        cell_ok = (ref.makespan == fst.makespan
                   and fst.fastsim_fallback is None
                   and ref_obs.export() == fst_obs.export())
        ok = ok and cell_ok
        if verbose:
            print(f"[obs-selftest] fast  {mechanism:4s}  "
                  f"makespan={fst.makespan}  "
                  f"engine_used={fst.fastsim_fallback is None}  "
                  f"export_identical="
                  f"{ref_obs.export() == fst_obs.export()}")
    return ok


# ----------------------------------------------------------------------
# Self-test
# ----------------------------------------------------------------------

def _check_monotone(events: List[dict]) -> None:
    """Per track, data-event timestamps must be non-decreasing."""
    last: dict = {}
    for event in events:
        if event.get("ph") == "M":
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if event.get("dur", 0) < 0:
            raise AssertionError(f"negative dur in {event}")
        if track in last and ts < last[track]:
            raise AssertionError(
                f"ts regression on track {track}: {last[track]} -> {ts}")
        last[track] = ts


def run_selftest(verbose: bool = True) -> bool:
    """Tiny-workload end-to-end check of the whole obs stack."""
    from repro.exp.runner import execute_job, Job

    spec = WorkloadSpec(structure="hashmap", num_threads=4,
                        initial_size=64, ops_per_thread=12, seed=1)
    config = MachineConfig(num_cores=4)
    interval = 500
    ok = True
    captures: dict = {}
    for mechanism in SELFTEST_MECHANISMS:
        plain = simulate(spec, mechanism, config)
        observed, observer = _observed_run(spec, mechanism, config,
                                           trace=True,
                                           timeline_interval=interval,
                                           provenance=True)

        identical = (plain.makespan == observed.makespan
                     and plain.stats.summary() == observed.stats.summary())

        with tempfile.NamedTemporaryFile("w+", suffix=".json") as tmp:
            # export() merges the timeline counter tracks into the span
            # events, so the monotonicity check covers both.
            write_chrome_trace(observer.export()["trace_events"], tmp)
            tmp.flush()
            tmp.seek(0)
            document = json.load(tmp)
        events = document["traceEvents"]
        _check_monotone(events)

        attribution = attribute_run(observed.stats,
                                    observer.metrics.counters)
        reconciles = (attribution.persist_stall_total
                      == observed.stats.persist_stall_cycles)
        critical = attribution.critical_core
        adds_up = (critical.compute + critical.coherence
                   + critical.persist_stall == critical.total
                   and critical.total == observed.makespan
                   and all(c.coherence >= 0 for c in attribution.cores))

        # The timeline's window sums must reconcile exactly with the
        # aggregate counters/stats over the same run.
        timeline = observer.timeline
        counters = observer.metrics.counters
        tl_compute = all(
            sum(timeline.dense(f"compute.c{core}"))
            == counters.get(f"sched.compute_cycles.c{core}", 0)
            for core in range(config.num_cores))
        tl_stall = (sum(sum(timeline.dense(name))
                        for name in timeline.names()
                        if name.startswith("stall.c"))
                    == observed.stats.persist_stall_cycles)
        tl_nvm = (sum(sum(timeline.dense(name))
                      for name in timeline.names()
                      if name.startswith("nvm.lines.ch"))
                  == counters.get("persist.lines", 0))
        tl_reconciles = tl_compute and tl_stall and tl_nvm

        # Provenance pin: the stall flamegraph folds must sum exactly
        # to persist_stall_cycles (same single charge point), and the
        # persist-count folds must cover every recorded persist.
        prov = observer.export()["provenance"]
        stall_folds = flame.collapse_stacks(prov, "stalls")
        persist_folds = flame.collapse_stacks(prov, "persists")
        prov_reconciles = (
            flame.total(stall_folds)
            == observed.stats.persist_stall_cycles
            and flame.total(persist_folds) == len(prov["persists"]))

        # The obs path must also compose with the runner/cache layer.
        summary = execute_job(Job(spec=spec, mechanism=mechanism,
                                  config=config, collect_obs=True,
                                  timeline_interval=interval,
                                  collect_provenance=True))
        carried = (summary.obs is not None
                   and summary.obs["metrics"]["counters"]
                   == observer.metrics.counters
                   and summary.obs.get("timeline")
                   == timeline.to_dict()
                   and summary.obs.get("provenance") == prov)
        captures[mechanism] = diff_mod.make_capture(summary)

        passed = (identical and reconciles and adds_up
                  and tl_reconciles and prov_reconciles and carried)
        ok = ok and passed
        if verbose:
            print(f"[obs-selftest] {mechanism:4s}  "
                  f"identical={identical}  trace_events={len(events)}  "
                  f"stall_reconciled={reconciles}  "
                  f"segments_add_up={adds_up}  "
                  f"timeline_reconciled={tl_reconciles}  "
                  f"provenance_reconciled={prov_reconciles}  "
                  f"summary_carries={carried}")

    # Diff pin: LRP-vs-BB on the same workload/seed must align and
    # report avoided persists (BB's proactive flushes that LRP's lazy
    # triggers never issue).
    gap = diff_mod.diff_captures(captures["bb"], captures["lrp"])
    diff_ok = (gap["persists"]["avoided"] > 0
               and gap["first_divergence"] is not None)
    ok = ok and diff_ok
    if verbose:
        divergence = gap["first_divergence"]
        at = divergence["index"] if divergence else "never"
        print(f"[obs-selftest] diff  lrp-vs-bb  "
              f"avoided={gap['persists']['avoided']}  "
              f"moved={gap['persists']['moved']}  diverges_at={at}")

    # Fast-engine pin: the batched engine's flat-array telemetry must
    # reproduce the reference Observer's export exactly — counter for
    # counter, window for window — across the full mechanism matrix.
    fast_ok = fast_telemetry_reconciles(spec, config, interval,
                                        verbose=verbose)
    ok = ok and fast_ok

    # KV-service span pins, across the full mechanism matrix:
    # (a) the streaming reservoir's p50/p99/p999 equal the exact
    #     nearest-rank quantiles of the stored per-request records
    #     (both request latency and durable latency);
    # (b) makespans are bit-identical with span tracking on vs off;
    # (c) the spans-enabled run keeps the batch engine engaged (no
    #     silent fallback to the reference loop).
    kv_spec = KVServiceSpec(structure="hashmap", num_threads=4,
                            initial_size=64, requests_per_thread=12,
                            seed=1)
    kv_ok = True
    for mechanism in FULL_MECHANISMS:
        plain = simulate(kv_spec, mechanism, config)
        observer = Observer(spans=True)
        observed = simulate(kv_spec, mechanism, config,
                            observer=observer)
        identical = plain.makespan == observed.makespan
        engaged = observed.fastsim_fallback is None
        counted = (observer.spans.request_count()
                   == kv_spec.total_requests)
        records = slo.build_records(
            kv_spec, observed.config, observer.spans,
            persist_log=observed.nvm.persist_log())
        exact = True
        for values in ([r.latency for r in records],
                       [r.durable_latency for r in records]):
            reservoir = slo.LatencyReservoir()
            for value in values:
                reservoir.observe(value)
            exact = exact and all(
                reservoir.quantile(q) == slo.exact_quantile(values, q)
                for _name, q in slo.SLO_QUANTILES)
        cell_ok = identical and engaged and counted and exact
        kv_ok = kv_ok and cell_ok
        if verbose:
            print(f"[obs-selftest] kv    {mechanism:4s}  "
                  f"identical={identical}  engine_used={engaged}  "
                  f"requests={observer.spans.request_count()}  "
                  f"quantiles_exact={exact}")
    # ... and the two engines must agree on the span lanes themselves.
    kv_ok = kv_ok and kv_engines_agree(kv_spec, config, verbose=verbose)
    ok = ok and kv_ok

    if verbose:
        print(f"[obs-selftest] {'PASSED' if ok else 'FAILED'}")
    return ok


# ----------------------------------------------------------------------
# Fast-telemetry smoke benchmark
# ----------------------------------------------------------------------

def cmd_fastsmoke(args: argparse.Namespace) -> int:
    """Gate the batched engine's telemetry overhead and correctness.

    One paper-scale figure cell (hashmap/lrp by default) runs through
    the batched engine plain and with a metrics+timeline Observer
    attached, in ABBA rounds whose per-round ratios are summarized by
    their median (see the inline comment on why min-of-N is the wrong
    estimator on a shared box). Alongside the wall numbers the run
    checks the invariants the overhead figure is meaningless without:
    every makespan identical (telemetry must not perturb simulation),
    the fast path actually taken, and the small-matrix exact
    reconciliation against the reference Observer.
    """
    import time

    from repro.bench.configs import SCALED_CONFIG, bench_config, \
        figure_spec

    spec = figure_spec(args.workload, num_threads=args.threads,
                       scale=args.scale, seed=args.seed)
    config = bench_config(SCALED_CONFIG)
    interval = args.interval

    print(f"[obsfast] {spec.structure}/{args.mechanism} "
          f"--scale {args.scale}: {spec.num_threads} threads x "
          f"{spec.ops_per_thread} ops, median of {args.rounds} "
          f"ABBA rounds")
    # Cold cells (setup + simulation, the same cell definition the
    # profile/perf-smoke gates time). Ambient load on a shared box
    # drifts on a minutes timescale — far more than the overhead being
    # measured — so comparing a min-of-N plain against a min-of-N
    # observed (whose minima may come from different load eras) is
    # hopeless. Instead each round times plain/observed/observed/plain
    # back to back (ABBA: linear drift within the round cancels) and
    # yields one overhead ratio; the median over rounds is robust to
    # the odd round that a background task stomped on.
    from repro.core.simulator import clear_setup_cache

    ratios: List[float] = []
    best_plain = best_obs = float("inf")
    makespans = set()
    fast_path_used = True
    previous = os.environ.get("REPRO_FASTSIM")
    os.environ["REPRO_FASTSIM"] = "1"

    def timed_cell(observe: bool) -> float:
        nonlocal fast_path_used
        clear_setup_cache()
        t0 = time.perf_counter()
        result = simulate(spec, args.mechanism, config,
                          observer=Observer(timeline_interval=interval)
                          if observe else None)
        dt = time.perf_counter() - t0
        makespans.add(result.makespan)
        fast_path_used &= result.fastsim_fallback is None
        return dt

    try:
        for _ in range(args.rounds):
            a1 = timed_cell(False)
            b1 = timed_cell(True)
            b2 = timed_cell(True)
            a2 = timed_cell(False)
            ratios.append((b1 + b2) / (a1 + a2))
            best_plain = min(best_plain, a1, a2)
            best_obs = min(best_obs, b1, b2)
    finally:
        if previous is None:
            os.environ.pop("REPRO_FASTSIM", None)
        else:
            os.environ["REPRO_FASTSIM"] = previous
        clear_setup_cache()

    ratios.sort()
    mid = len(ratios) // 2
    median_ratio = (ratios[mid] if len(ratios) % 2
                    else (ratios[mid - 1] + ratios[mid]) / 2)
    overhead_pct = 100.0 * (median_ratio - 1.0)
    makespan_identical = len(makespans) == 1

    small_spec = WorkloadSpec(structure="hashmap", num_threads=4,
                              initial_size=64, ops_per_thread=12,
                              seed=1)
    reconciled = fast_telemetry_reconciles(
        small_spec, MachineConfig(num_cores=4), interval)

    snapshot = {
        "suite.cell": f"{spec.structure}/{args.mechanism}",
        "suite.scale": args.scale,
        "suite.rounds": args.rounds,
        "suite.timeline_interval": interval,
        "makespan": makespans.pop() if makespan_identical else -1,
        "seconds_plain": round(best_plain, 4),
        "seconds_obs": round(best_obs, 4),
        "telemetry_overhead_pct": round(overhead_pct, 2),
        "makespan_identical": makespan_identical,
        "reconciled": reconciled,
        "fast_path_used": fast_path_used,
    }
    _ensure_parent(args.bench_out)
    with open(args.bench_out, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(f"[obsfast] plain {best_plain:.3f}s  observed {best_obs:.3f}s"
          f"  overhead +{overhead_pct:.1f}% "
          f"(limit {args.overhead_limit:.0f}%)")
    print(f"[obsfast] makespan_identical={makespan_identical}  "
          f"fast_path_used={fast_path_used}  reconciled={reconciled}")
    print(f"[obsfast] wrote {args.bench_out}")
    failures = []
    if not makespan_identical:
        failures.append("telemetry perturbed the makespan")
    if not fast_path_used:
        failures.append("batched engine fell back to the reference loop")
    if not reconciled:
        failures.append("fast-vs-reference telemetry mismatch")
    if overhead_pct > args.overhead_limit:
        failures.append(f"telemetry overhead {overhead_pct:.1f}% exceeds "
                        f"{args.overhead_limit:.0f}%")
    for failure in failures:
        print(f"[obsfast] FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("[obsfast] PASSED")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# KV-service SLO reporting and smoke gate
# ----------------------------------------------------------------------

def _kv_spec_from_args(args: argparse.Namespace) -> KVServiceSpec:
    return KVServiceSpec(structure=args.workload,
                         num_threads=args.threads,
                         initial_size=args.size,
                         requests_per_thread=args.requests,
                         read_ratio=args.read_ratio,
                         zipf_theta=args.zipf_theta,
                         seed=args.seed)


def _kv_run(spec: KVServiceSpec, mechanism: str, config: MachineConfig,
            crash_points: Optional[int] = None, crash_seed: int = 0):
    """One span-tracked KV run -> (result, records, SLO payload)."""
    observer = Observer(spans=True)
    result = simulate(spec, mechanism, config, observer=observer)
    records = slo.build_records(spec, result.config, observer.spans,
                                persist_log=result.nvm.persist_log())
    payload = slo.slo_summary(records, result.makespan)
    if crash_points is not None:
        result._slo_records = records
        try:
            payload["recovery"] = slo.rto_summary(result, crash_points,
                                                  crash_seed)
        finally:
            del result._slo_records
    return result, records, payload


def _render_kv_rows(payloads: dict) -> List[str]:
    """The per-mechanism service-comparison table."""
    lines = [f"{'mech':5s} {'makespan':>9s} {'req/kcyc':>9s} "
             f"{'p50':>7s} {'p99':>7s} {'p999':>7s} "
             f"{'d.p99':>7s} {'d.lag':>7s} {'rto':>8s} {'lost':>6s}"]
    for mechanism, payload in payloads.items():
        latency = payload["latency"]
        durable = payload["durable_latency"]
        recovery = payload.get("recovery")
        rto = (f"{recovery['rto']['mean_cycles']:8.0f}"
               if recovery else f"{'-':>8s}")
        lost = (f"{recovery['lost_requests']['mean']:6.1f}"
                if recovery and "lost_requests" in recovery
                else f"{'-':>6s}")
        lines.append(
            f"{mechanism:5s} {payload['makespan']:9d} "
            f"{payload['throughput_rpkc']:9.2f} "
            f"{latency['p50']:7d} {latency['p99']:7d} "
            f"{latency['p999']:7d} {durable['p99']:7d} "
            f"{durable['max_lag']:7d} {rto} {lost}")
    return lines


def cmd_slo(args: argparse.Namespace) -> int:
    spec = _kv_spec_from_args(args)
    config = _config_from_args(args)
    single = len(args.mechanisms) == 1
    if args.csv and not single:
        raise ValueError("--csv writes per-request rows for one run; "
                         "pass exactly one --mechanisms entry")
    if args.trace_out and not single:
        raise ValueError("--trace-out exports one run's request spans; "
                         "pass exactly one --mechanisms entry")

    payloads: dict = {}
    all_records: dict = {}
    crash_points = args.crash_points if args.crash_points else None
    for mechanism in args.mechanisms:
        _result, records, payload = _kv_run(
            spec, mechanism, config,
            crash_points=crash_points, crash_seed=args.seed)
        payloads[mechanism] = payload
        all_records[mechanism] = records

    print(f"KV service SLO: {spec.structure}, {spec.num_threads} "
          f"clients x {spec.requests_per_thread} requests, "
          f"read {spec.read_ratio:.2f}, zipf {spec.zipf_theta:.2f}, "
          f"{config.nvm_mode.value} NVM "
          f"(latencies in cycles, open-loop reconstruction)")
    for line in _render_kv_rows(payloads):
        print(line)
    for mechanism, records in all_records.items():
        completions = slo.completion_series(records, args.interval)
        p99s = [int(value)
                for value in slo.latency_p99_series(records,
                                                    args.interval)]
        print(f" {mechanism:5s} completions/{args.interval}cyc  "
              f"{sparkline(completions, width=args.width)}")
        print(f" {mechanism:5s} p99 latency/{args.interval}cyc  "
              f"{sparkline(p99s, width=args.width)}")

    if args.csv:
        _ensure_parent(args.csv)
        with open(args.csv, "w", newline="") as handle:
            rows = slo.write_slo_csv(all_records[args.mechanisms[0]],
                                     handle)
        print(f"wrote {rows} request rows to {args.csv}")
    if args.trace_out:
        events = slo.chrome_request_events(
            all_records[args.mechanisms[0]])
        _ensure_parent(args.trace_out)
        write_chrome_trace(events, args.trace_out)
        print(f"wrote {len(events)} request-span events to "
              f"{args.trace_out} (load in chrome://tracing or "
              f"https://ui.perfetto.dev)")
    if args.json_out:
        _ensure_parent(args.json_out)
        with open(args.json_out, "w") as handle:
            json.dump({"spec": {
                "structure": spec.structure,
                "num_threads": spec.num_threads,
                "requests_per_thread": spec.requests_per_thread,
                "read_ratio": spec.read_ratio,
                "zipf_theta": spec.zipf_theta,
                "seed": spec.seed,
            }, "mechanisms": payloads}, handle, indent=1,
                sort_keys=True)
            handle.write("\n")
        print(f"wrote SLO payloads to {args.json_out}")
    return 0


def kv_engines_agree(spec: KVServiceSpec, config: MachineConfig,
                     mechanisms: Sequence[str] = KV_MECHANISMS,
                     verbose: bool = False) -> bool:
    """Reference-vs-fast span equality across ``mechanisms``.

    Both engines must produce identical makespans AND identical span
    lanes (boundary clocks and event marks), with the fast run actually
    on the fast path — the span hook must not silently push runs back
    to the reference loop.
    """
    from repro.core.simulator import clear_setup_cache

    ok = True
    previous = os.environ.get("REPRO_FASTSIM")
    try:
        for mechanism in mechanisms:
            os.environ["REPRO_FASTSIM"] = "0"
            clear_setup_cache()
            ref_obs = Observer(spans=True)
            ref = simulate(spec, mechanism, config, observer=ref_obs)
            os.environ["REPRO_FASTSIM"] = "1"
            clear_setup_cache()
            fst_obs = Observer(spans=True)
            fst = simulate(spec, mechanism, config, observer=fst_obs)
            cell_ok = (ref.makespan == fst.makespan
                       and fst.fastsim_fallback is None
                       and ref_obs.spans.to_dict() == fst_obs.spans.to_dict())
            ok = ok and cell_ok
            if verbose:
                print(f"[obs-selftest] kv-eng {mechanism:4s}  "
                      f"makespan={fst.makespan}  "
                      f"engine_used={fst.fastsim_fallback is None}  "
                      f"spans_identical="
                      f"{ref_obs.spans.to_dict() == fst_obs.spans.to_dict()}")
    finally:
        if previous is None:
            os.environ.pop("REPRO_FASTSIM", None)
        else:
            os.environ["REPRO_FASTSIM"] = previous
        clear_setup_cache()
    return ok


def cmd_kvsmoke(args: argparse.Namespace) -> int:
    """Gate the KV-service span tracking: overhead, identity, exactness.

    The same ABBA discipline as ``fastsmoke`` (see the comment there on
    why back-to-back rounds beat min-of-N on a shared box), but the
    observed side attaches a spans-only Observer — the per-request hook
    this PR adds to both execution loops. Alongside the overhead
    number, the gates the figure is meaningless without: every makespan
    identical (span tracking must not perturb the simulation), the
    batch engine actually engaged, streaming percentiles exactly equal
    to the stored-record percentiles, and reference-vs-fast span lanes
    identical. The snapshot also carries the lrp/bb/sb SLO payloads so
    the history dashboard gates service latency/throughput/RTO drift.
    """
    import time

    from repro.core.simulator import clear_setup_cache

    spec = _kv_spec_from_args(args)
    config = _config_from_args(args)

    print(f"[kvsmoke] {spec.structure}/kv: {spec.num_threads} clients "
          f"x {spec.requests_per_thread} requests, median of "
          f"{args.rounds} ABBA rounds")

    makespans = set()
    fast_path_used = True
    previous = os.environ.get("REPRO_FASTSIM")
    os.environ["REPRO_FASTSIM"] = "1"

    def timed_cell(observe: bool) -> float:
        nonlocal fast_path_used
        clear_setup_cache()
        t0 = time.perf_counter()
        result = simulate(spec, args.mechanism, config,
                          observer=Observer(spans=True)
                          if observe else None)
        dt = time.perf_counter() - t0
        makespans.add(result.makespan)
        fast_path_used &= result.fastsim_fallback is None
        return dt

    ratios: List[float] = []
    best_plain = best_obs = float("inf")
    try:
        for _ in range(args.rounds):
            a1 = timed_cell(False)
            b1 = timed_cell(True)
            b2 = timed_cell(True)
            a2 = timed_cell(False)
            ratios.append((b1 + b2) / (a1 + a2))
            best_plain = min(best_plain, a1, a2)
            best_obs = min(best_obs, b1, b2)
    finally:
        if previous is None:
            os.environ.pop("REPRO_FASTSIM", None)
        else:
            os.environ["REPRO_FASTSIM"] = previous
        clear_setup_cache()

    ratios.sort()
    mid = len(ratios) // 2
    median_ratio = (ratios[mid] if len(ratios) % 2
                    else (ratios[mid - 1] + ratios[mid]) / 2)
    overhead_pct = 100.0 * (median_ratio - 1.0)
    makespan_identical = len(makespans) == 1

    # The service-comparison payloads (and the streaming-vs-exact
    # percentile reconciliation, on every mechanism's records).
    payloads: dict = {}
    quantiles_exact = True
    for mechanism in KV_MECHANISMS:
        _result, records, payload = _kv_run(
            spec, mechanism, config,
            crash_points=args.crash_points, crash_seed=args.seed)
        payloads[mechanism] = payload
        for values in ([r.latency for r in records],
                       [r.durable_latency for r in records]):
            reservoir = slo.LatencyReservoir()
            for value in values:
                reservoir.observe(value)
            quantiles_exact &= all(
                reservoir.quantile(q) == slo.exact_quantile(values, q)
                for _name, q in slo.SLO_QUANTILES)

    small = KVServiceSpec(structure="hashmap", num_threads=4,
                          initial_size=64, requests_per_thread=12,
                          seed=1)
    engines_agree = kv_engines_agree(small, MachineConfig(num_cores=4))

    snapshot = {
        "suite.cell": f"{spec.structure}/kv/{args.mechanism}",
        "suite.threads": spec.num_threads,
        "suite.requests": spec.total_requests,
        "suite.rounds": args.rounds,
        "seconds_plain": round(best_plain, 4),
        "seconds_obs": round(best_obs, 4),
        "telemetry_overhead_pct": round(overhead_pct, 2),
        "makespan_identical": makespan_identical,
        "fast_path_used": fast_path_used,
        "quantiles_exact": quantiles_exact,
        "engines_agree": engines_agree,
        "kv": payloads,
    }
    _ensure_parent(args.bench_out)
    with open(args.bench_out, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(f"[kvsmoke] plain {best_plain:.3f}s  observed {best_obs:.3f}s"
          f"  overhead +{overhead_pct:.1f}% "
          f"(limit {args.overhead_limit:.0f}%)")
    print(f"[kvsmoke] makespan_identical={makespan_identical}  "
          f"fast_path_used={fast_path_used}  "
          f"quantiles_exact={quantiles_exact}  "
          f"engines_agree={engines_agree}")
    for line in _render_kv_rows(payloads):
        print(f"[kvsmoke] {line}")
    print(f"[kvsmoke] wrote {args.bench_out}")
    failures = []
    if not makespan_identical:
        failures.append("span tracking perturbed the makespan")
    if not fast_path_used:
        failures.append("batched engine fell back to the reference loop")
    if not quantiles_exact:
        failures.append("streaming percentiles diverge from the "
                        "stored-record percentiles")
    if not engines_agree:
        failures.append("reference-vs-fast span lanes differ")
    if overhead_pct > args.overhead_limit:
        failures.append(f"span-tracking overhead {overhead_pct:.1f}% "
                        f"exceeds {args.overhead_limit:.0f}%")
    for failure in failures:
        print(f"[kvsmoke] FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("[kvsmoke] PASSED")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability utilities: trace export, "
                    "critical-path attribution, self-test.")
    parser.add_argument("--selftest", action="store_true",
                        help="tiny-workload end-to-end obs check")
    subparsers = parser.add_subparsers(dest="command")

    trace_parser = subparsers.add_parser(
        "trace", help="run one simulation and export a Chrome trace")
    trace_parser.add_argument("output",
                              help="trace-event JSON destination")
    trace_parser.add_argument("--mechanism", default="lrp")
    _add_workload_args(trace_parser)

    report_parser = subparsers.add_parser(
        "report", help="print the critical-path attribution report")
    report_parser.add_argument("--mechanisms", nargs="+",
                               default=list(SELFTEST_MECHANISMS))
    _add_workload_args(report_parser)

    timeline_parser = subparsers.add_parser(
        "timeline",
        help="cycle-windowed telemetry as sparklines / CSV / counters")
    timeline_parser.add_argument("--mechanism", default="lrp")
    timeline_parser.add_argument(
        "--interval", type=int, default=DEFAULT_TIMELINE_INTERVAL,
        help="window width in cycles (default: %(default)s)")
    timeline_parser.add_argument(
        "--width", type=int, default=72,
        help="sparkline width in characters (default: %(default)s)")
    timeline_parser.add_argument(
        "--csv", metavar="FILE",
        help="also dump every raw series as CSV")
    timeline_parser.add_argument(
        "--trace-out", metavar="FILE",
        help="also export a Chrome trace with counter tracks")
    timeline_parser.add_argument(
        "--export-out", metavar="FILE",
        help="also dump the full observer export as JSON")
    timeline_parser.add_argument(
        "--from-export", metavar="FILE",
        help="re-render the timeline of a saved --export-out file "
             "instead of running a simulation")
    _add_workload_args(timeline_parser)

    provenance_parser = subparsers.add_parser(
        "provenance",
        help="run with persist-provenance tracking; write the capture")
    provenance_parser.add_argument(
        "output", help="capture JSON destination (for flame / diff)")
    provenance_parser.add_argument("--mechanism", default="lrp")
    _add_workload_args(provenance_parser)

    flame_parser = subparsers.add_parser(
        "flame",
        help="collapsed-stack flamegraph of persist stalls / persists")
    flame_parser.add_argument(
        "output", help="folded-stacks destination (speedscope-loadable)")
    flame_parser.add_argument("--mechanism", default="lrp")
    flame_parser.add_argument(
        "--mode", choices=list(flame.MODES), default="stalls",
        help="stalls = stall cycles per site;reason (reconciles with "
             "persist_stall_cycles); persists = persist counts per "
             "site;trigger (default: %(default)s)")
    flame_parser.add_argument(
        "--limit", type=int, default=15,
        help="rows in the ASCII top-N table (default: %(default)s)")
    flame_parser.add_argument(
        "--from-capture", metavar="FILE",
        help="fold a saved provenance capture instead of running")
    _add_workload_args(flame_parser)

    diff_parser = subparsers.add_parser(
        "diff",
        help="explain the gap between two mechanisms on one workload")
    diff_parser.add_argument(
        "--base", default="bb",
        help="reference mechanism (default: %(default)s)")
    diff_parser.add_argument(
        "--other", default="lrp",
        help="mechanism being explained (default: %(default)s)")
    diff_parser.add_argument(
        "--captures", nargs=2, metavar=("BASE", "OTHER"),
        help="diff two saved capture files instead of running")
    diff_parser.add_argument(
        "--json-out", metavar="FILE",
        help="also write the machine-readable diff as JSON")
    diff_parser.add_argument(
        "--limit", type=int, default=12,
        help="rows per delta table (default: %(default)s)")
    _add_workload_args(diff_parser)

    fastsmoke_parser = subparsers.add_parser(
        "fastsmoke",
        help="gate the batched engine's telemetry overhead and "
             "fast-vs-reference reconciliation; write BENCH_obsfast.json")
    fastsmoke_parser.add_argument("--mechanism", default="lrp")
    fastsmoke_parser.add_argument("--workload", default="hashmap")
    fastsmoke_parser.add_argument("--threads", type=int, default=32)
    fastsmoke_parser.add_argument(
        "--scale", default="paper", choices=("quick", "full", "paper"),
        help="figure-cell scale (default: %(default)s)")
    fastsmoke_parser.add_argument("--seed", type=int, default=1)
    fastsmoke_parser.add_argument(
        "--rounds", type=int, default=5,
        help="ABBA rounds (plain/observed/observed/plain, one overhead "
             "ratio each); the median ratio is the reported overhead "
             "(default: %(default)s)")
    fastsmoke_parser.add_argument(
        "--interval", type=int, default=DEFAULT_TIMELINE_INTERVAL,
        help="timeline window width in cycles (default: %(default)s)")
    fastsmoke_parser.add_argument(
        "--overhead-limit", type=float, default=15.0,
        help="max telemetry overhead percent (default: %(default)s)")
    fastsmoke_parser.add_argument(
        "--bench-out", metavar="FILE", default="BENCH_obsfast.json",
        help="snapshot destination (default: %(default)s)")

    slo_parser = subparsers.add_parser(
        "slo",
        help="KV-service report: throughput, exact latency "
             "percentiles, durability lag, crash RTO")
    slo_parser.add_argument(
        "--mechanisms", nargs="+", default=list(KV_MECHANISMS),
        help="mechanisms to compare (default: %(default)s)")
    slo_parser.add_argument("--workload", default="hashmap",
                            help="keyed LFD backing the store "
                                 "(default: %(default)s)")
    slo_parser.add_argument("--threads", type=int, default=8,
                            help="client threads (default: %(default)s)")
    slo_parser.add_argument("--size", type=int, default=512,
                            help="initial store size "
                                 "(default: %(default)s)")
    slo_parser.add_argument("--requests", type=int, default=64,
                            help="requests per client "
                                 "(default: %(default)s)")
    slo_parser.add_argument("--read-ratio", type=float, default=0.9)
    slo_parser.add_argument("--zipf-theta", type=float, default=0.99)
    slo_parser.add_argument("--seed", type=int, default=42)
    slo_parser.add_argument("--uncached", action="store_true",
                            help="uncached NVM mode")
    slo_parser.add_argument(
        "--crash-points", type=int, default=8,
        help="crash prefixes sampled for the RTO table; 0 disables "
             "(default: %(default)s)")
    slo_parser.add_argument(
        "--interval", type=int, default=DEFAULT_TIMELINE_INTERVAL,
        help="sparkline window width in cycles (default: %(default)s)")
    slo_parser.add_argument(
        "--width", type=int, default=72,
        help="sparkline width in characters (default: %(default)s)")
    slo_parser.add_argument(
        "--csv", metavar="FILE",
        help="per-request records as CSV (single mechanism only)")
    slo_parser.add_argument(
        "--trace-out", metavar="FILE",
        help="request spans as a Chrome trace (single mechanism only)")
    slo_parser.add_argument(
        "--json-out", metavar="FILE",
        help="full SLO payloads as JSON")

    kvsmoke_parser = subparsers.add_parser(
        "kvsmoke",
        help="gate the KV-service span-tracking overhead and "
             "exactness; write BENCH_kv.json")
    kvsmoke_parser.add_argument("--mechanism", default="lrp",
                                help="mechanism timed in the ABBA "
                                     "rounds (default: %(default)s)")
    kvsmoke_parser.add_argument("--workload", default="hashmap")
    kvsmoke_parser.add_argument("--threads", type=int, default=16)
    kvsmoke_parser.add_argument("--size", type=int, default=1024)
    kvsmoke_parser.add_argument("--requests", type=int, default=192,
                                help="requests per client "
                                     "(default: %(default)s)")
    kvsmoke_parser.add_argument("--read-ratio", type=float, default=0.9)
    kvsmoke_parser.add_argument("--zipf-theta", type=float,
                                default=0.99)
    kvsmoke_parser.add_argument("--seed", type=int, default=42)
    kvsmoke_parser.add_argument("--uncached", action="store_true")
    kvsmoke_parser.add_argument(
        "--rounds", type=int, default=5,
        help="ABBA rounds (plain/spans/spans/plain, one overhead "
             "ratio each); the median ratio is the reported overhead "
             "(default: %(default)s)")
    kvsmoke_parser.add_argument(
        "--crash-points", type=int, default=8,
        help="crash prefixes per mechanism for the RTO payload "
             "(default: %(default)s)")
    kvsmoke_parser.add_argument(
        "--overhead-limit", type=float, default=15.0,
        help="max span-tracking overhead percent "
             "(default: %(default)s)")
    kvsmoke_parser.add_argument(
        "--bench-out", metavar="FILE", default="BENCH_kv.json",
        help="snapshot destination (default: %(default)s)")

    audit_parser = subparsers.add_parser(
        "audit",
        help="re-verify persist order / consistent cuts against the "
             "RP model")
    audit_parser.add_argument("--mechanism", default="lrp")
    audit_parser.add_argument(
        "--workloads", nargs="+", metavar="LFD",
        help="workloads to audit (default: all five)")
    audit_parser.add_argument(
        "--cuts", type=int, default=8,
        help="crash cuts sampled per run (default: %(default)s)")
    audit_parser.add_argument(
        "--detail", type=int, default=5,
        help="violation provenance lines shown per run "
             "(default: %(default)s)")
    audit_parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on any violation, even for mechanisms "
             "without an RP guarantee (nop/arp)")
    _add_workload_args(audit_parser, single_workload=False)

    args = parser.parse_args(argv)
    if args.command == "audit" and args.workloads is None:
        from repro.lfds import WORKLOAD_NAMES
        args.workloads = list(WORKLOAD_NAMES)
    try:
        if args.selftest:
            return 0 if run_selftest() else 1
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "report":
            return cmd_report(args)
        if args.command == "timeline":
            return cmd_timeline(args)
        if args.command == "audit":
            return cmd_audit(args)
        if args.command == "provenance":
            return cmd_provenance(args)
        if args.command == "flame":
            return cmd_flame(args)
        if args.command == "diff":
            return cmd_diff(args)
        if args.command == "fastsmoke":
            return cmd_fastsmoke(args)
        if args.command == "slo":
            return cmd_slo(args)
        if args.command == "kvsmoke":
            return cmd_kvsmoke(args)
    except (ValueError, OSError) as exc:
        # Operator errors (unknown mechanism/workload, unwritable or
        # missing file, export without the requested data) get a
        # one-line diagnostic, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
